package core

import (
	"encoding/binary"

	"microspec/internal/catalog"
	"microspec/internal/types"
)

// This file is the pre-compiled snippet library: the typed code fragments
// from which the bee maker assembles GCL and SCL routines. Each
// constructor corresponds to one template snippet in the paper's bee
// configuration group ("each routine is assembled by the developer into a
// set of code snippets ... selected and grouped"); calling a constructor
// with the specializing values (offset, width, ordinal) plays the role of
// patching constants into the pre-compiled object code. No snippet
// consults catalog metadata at run time — that is the point.

func alignUp(off, align int) int { return (off + align - 1) &^ (align - 1) }

// --- SCL op program ---
//
// The fill routine is a flat program of pre-compiled op variants executed
// by one tight loop (runFillProgram). Each op is one selected snippet
// with its specializing constants (output offset, value ordinal, width)
// baked in; ops in the fixed prefix carry absolute offsets, ops after the
// first varlena compute theirs from the running offset.

// fillOpKind selects the snippet variant.
type fillOpKind uint8

const (
	// fillOpWord4 stores 4 bytes (int32/date).
	fillOpWord4 fillOpKind = iota
	// fillOpWord8 stores 8 bytes (int64 and float64: the Datum's I field
	// already holds the IEEE-754 bits for floats).
	fillOpWord8
	// fillOpBool stores one byte.
	fillOpBool
	// fillOpChar stores a blank-padded CHAR(n).
	fillOpChar
	// fillOpVarlena stores a 4-byte length prefix plus payload.
	fillOpVarlena
)

// fillOp is one program step.
type fillOp struct {
	op    fillOpKind
	idx   uint16 // values ordinal
	off   int32  // baked data offset; -1 = dynamic
	align int32
	width int32 // storage width (payload cap for varlena)
}

// buildFillProgram lays out the stored attributes of rel into a fill
// program, returning the program, the constant-prefix size, and the
// (fixed, varlena, specialized) attribute counts.
func buildFillProgram(rel *catalog.Relation) ([]fillOp, int, [3]int) {
	var ops []fillOp
	var counts [3]int
	off := 0
	constant := true
	for i := range rel.Attrs {
		a := &rel.Attrs[i]
		if rel.IsSpecialized(i) {
			counts[2]++
			continue
		}
		op := fillOp{idx: uint16(i), off: -1, align: int32(a.Align), width: int32(a.Len)}
		switch a.Type.Kind {
		case types.KindInt32, types.KindDate:
			op.op = fillOpWord4
		case types.KindInt64, types.KindFloat64:
			op.op = fillOpWord8
		case types.KindBool:
			op.op = fillOpBool
		case types.KindChar:
			op.op = fillOpChar
		default:
			op.op = fillOpVarlena
			op.width = int32(a.Type.Width)
		}
		if a.Len >= 0 {
			counts[0]++
			if constant {
				attOff := alignUp(off, a.Align)
				op.off = int32(attOff)
				off = attOff + a.Len
			}
		} else {
			counts[1]++
			constant = false
		}
		ops = append(ops, op)
	}
	return ops, off, counts
}

// runFillProgram executes the program over the tuple data area.
func runFillProgram(ops []fillOp, data []byte, values []types.Datum) {
	off := 0
	for _, op := range ops {
		o := int(op.off)
		if o < 0 {
			if op.op == fillOpVarlena {
				o = (off + 3) &^ 3
			} else {
				o = alignUp(off, int(op.align))
			}
		}
		switch op.op {
		case fillOpWord4:
			binary.LittleEndian.PutUint32(data[o:], uint32(values[op.idx].I))
			off = o + 4
		case fillOpWord8:
			binary.LittleEndian.PutUint64(data[o:], uint64(values[op.idx].I))
			off = o + 8
		case fillOpBool:
			if values[op.idx].I != 0 {
				data[o] = 1
			} else {
				data[o] = 0
			}
			off = o + 1
		case fillOpChar:
			w := int(op.width)
			n := copy(data[o:o+w], values[op.idx].B)
			for ; n < w; n++ {
				data[o+n] = ' '
			}
			off = o + w
		case fillOpVarlena:
			b := values[op.idx].B
			binary.LittleEndian.PutUint32(data[o:], uint32(len(b)))
			copy(data[o+4:], b)
			off = o + 4 + len(b)
		}
	}
}

// --- GCL op program ---
//
// Like the fill program, the deform routine is a flat program of
// pre-compiled snippet variants executed by one switch loop. Constant
// offsets are baked for the fixed prefix ("values[1] = *(int*)(data+4)"
// in the paper's Listing 2); after the first stored varlena the offset is
// threaded dynamically; tuple-bee holes read the data section.

// deformOpKind selects the snippet variant.
type deformOpKind uint8

const (
	// deformOpWord4Const reads 4 bytes at a baked offset.
	deformOpWord4Const deformOpKind = iota
	// deformOpWord8Const reads 8 bytes at a baked offset.
	deformOpWord8Const
	// deformOpBoolConst reads 1 byte at a baked offset.
	deformOpBoolConst
	// deformOpCharConst slices CHAR(n) at a baked offset.
	deformOpCharConst
	// deformOpVarlenaConst reads a varlena at a baked offset.
	deformOpVarlenaConst
	// Dynamic-offset variants (after the first varlena).
	deformOpWord4Dyn
	deformOpWord8Dyn
	deformOpBoolDyn
	deformOpCharDyn
	deformOpVarlenaDyn
	// deformOpHole fills a tuple-bee-specialized attribute from the data
	// section (the paper's "values[2] = DATA_SECTION(bee_id, ...)").
	deformOpHole
)

// deformOp is one program step.
type deformOp struct {
	op      deformOpKind
	kind    types.Kind // result datum kind
	idx     uint16     // values ordinal
	specPos uint16     // data-section position for holes
	off     int32      // baked offset (const ops)
	align   int32
	width   int32
}

// buildDeformProgram lays out rel's attributes into a deform program.
func buildDeformProgram(rel *catalog.Relation) []deformOp {
	var ops []deformOp
	off := 0
	constant := true
	specPos := 0
	for i := range rel.Attrs {
		a := &rel.Attrs[i]
		if rel.IsSpecialized(i) {
			ops = append(ops, deformOp{op: deformOpHole, idx: uint16(i), specPos: uint16(specPos)})
			specPos++
			continue
		}
		op := deformOp{kind: a.Type.Kind, idx: uint16(i), align: int32(a.Align), width: int32(a.Len)}
		switch a.Type.Kind {
		case types.KindInt32, types.KindDate:
			op.op = deformOpWord4Dyn
		case types.KindInt64, types.KindFloat64:
			op.op = deformOpWord8Dyn
		case types.KindBool:
			op.op = deformOpBoolDyn
		case types.KindChar:
			op.op = deformOpCharDyn
		default:
			op.op = deformOpVarlenaDyn
		}
		if constant {
			attOff := alignUp(off, a.Align)
			op.off = int32(attOff)
			op.op -= 5 // dynamic variant → constant variant
			if a.Len >= 0 {
				off = attOff + a.Len
			} else {
				constant = false
			}
		}
		ops = append(ops, op)
	}
	return ops
}

// runDeformProgram executes the first natts steps of the program.
func runDeformProgram(ops []deformOp, data []byte, beeID uint16, combos *comboTable, values []types.Datum, natts int) {
	runDeformSegment(ops, data, beeID, combos, values, 0, natts, 0)
}

// runDeformSegment executes steps [from, to) of the program, taking and
// returning the running dynamic offset so a caller can interleave other
// work between segments — the fused scan-filter bee evaluates predicate
// conjuncts as soon as the attributes they read have been deformed.
func runDeformSegment(ops []deformOp, data []byte, beeID uint16, combos *comboTable, values []types.Datum, from, to, off int) int {
	for s := from; s < to; s++ {
		op := &ops[s]
		switch op.op {
		case deformOpWord4Const:
			values[op.idx] = types.MakeNumeric(int64(int32(binary.LittleEndian.Uint32(data[op.off:]))), op.kind)
			off = int(op.off) + 4
		case deformOpWord8Const:
			values[op.idx] = types.MakeNumeric(int64(binary.LittleEndian.Uint64(data[op.off:])), op.kind)
			off = int(op.off) + 8
		case deformOpBoolConst:
			var v int64
			if data[op.off] != 0 {
				v = 1
			}
			values[op.idx] = types.MakeNumeric(v, types.KindBool)
			off = int(op.off) + 1
		case deformOpCharConst:
			o, w := int(op.off), int(op.width)
			values[op.idx] = types.NewBytes(data[o:o+w:o+w], types.KindChar)
			off = o + w
		case deformOpVarlenaConst:
			o := int(op.off)
			n := int(binary.LittleEndian.Uint32(data[o:]))
			start := o + 4
			values[op.idx] = types.NewBytes(data[start:start+n:start+n], types.KindVarchar)
			off = start + n
		case deformOpWord4Dyn:
			o := alignUp(off, int(op.align))
			values[op.idx] = types.MakeNumeric(int64(int32(binary.LittleEndian.Uint32(data[o:]))), op.kind)
			off = o + 4
		case deformOpWord8Dyn:
			o := alignUp(off, int(op.align))
			values[op.idx] = types.MakeNumeric(int64(binary.LittleEndian.Uint64(data[o:])), op.kind)
			off = o + 8
		case deformOpBoolDyn:
			var v int64
			if data[off] != 0 {
				v = 1
			}
			values[op.idx] = types.MakeNumeric(v, types.KindBool)
			off++
		case deformOpCharDyn:
			w := int(op.width)
			values[op.idx] = types.NewBytes(data[off:off+w:off+w], types.KindChar)
			off += w
		case deformOpVarlenaDyn:
			o := (off + 3) &^ 3
			n := int(binary.LittleEndian.Uint32(data[o:]))
			start := o + 4
			values[op.idx] = types.NewBytes(data[start:start+n:start+n], types.KindVarchar)
			off = start + n
		case deformOpHole:
			values[op.idx] = combos.get(beeID)[op.specPos]
		}
	}
	return off
}
