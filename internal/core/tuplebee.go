package core

import (
	"fmt"
	"sync"

	"microspec/internal/catalog"
	"microspec/internal/profile"
	"microspec/internal/types"
)

// MaxDictValues is the per-attribute distinct-value cap for tuple-bee
// specialization; the paper checks "the few (maximally 256) possible
// values with memcmp".
const MaxDictValues = 256

// maxCombos bounds distinct tuple bees per relation: beeID is a uint16
// and 0 is reserved for "no bee".
const maxCombos = 1 << 16

// DataSections is a relation's clustered tuple-bee value storage: one
// dictionary per specialized attribute plus the combination table mapping
// each beeID to its attribute values. The distinct byte values live in a
// slab-allocated arena ("the slab-allocation technique is employed to
// pre-allocate the necessary memory"), so datums handed to queries alias
// stable storage.
type DataSections struct {
	rel     *catalog.Relation
	specIdx []int // attribute ordinals that are specialized, in order

	mu       sync.Mutex
	dicts    [][]types.Datum  // per specialized position: distinct values
	dictIdx  []map[string]int // per position: stored-form value → dict index
	slab     []byte           // arena for dictionary byte payloads
	comboIdx map[string]uint16
	nCombos  int
	probes   int64 // dictionary probes (one per specialized attribute per resolve)
	onNewBee func(vals []types.Datum) error

	// combos maps beeID → the specialized attribute values, indexed by
	// specialized position. It is a two-level paged table so GCL hole
	// snippets can read entries without taking the lock (the engine
	// serializes DML against queries) and empty relations cost nothing.
	combos *comboTable
}

// comboTable is a sparse beeID → values map: 256 lazily allocated pages
// of 256 entries each, covering the full uint16 beeID space.
type comboTable struct {
	pages [256]*[256][]types.Datum
}

func (c *comboTable) get(id uint16) []types.Datum {
	return c.pages[id>>8][id&0xff]
}

func (c *comboTable) set(id uint16, v []types.Datum) {
	pg := c.pages[id>>8]
	if pg == nil {
		pg = new([256][]types.Datum)
		c.pages[id>>8] = pg
	}
	pg[id&0xff] = v
}

const slabChunk = 64 * 1024

func newDataSections(rel *catalog.Relation) *DataSections {
	ds := &DataSections{
		rel:      rel,
		comboIdx: make(map[string]uint16),
		combos:   new(comboTable),
		nCombos:  1, // beeID 0 reserved
		slab:     make([]byte, 0, slabChunk),
	}
	for i := range rel.Attrs {
		if rel.IsSpecialized(i) {
			ds.specIdx = append(ds.specIdx, i)
		}
	}
	ds.dicts = make([][]types.Datum, len(ds.specIdx))
	ds.dictIdx = make([]map[string]int, len(ds.specIdx))
	for i := range ds.dictIdx {
		ds.dictIdx[i] = make(map[string]int)
	}
	return ds
}

// SpecializedAttrs returns the ordinals of the specialized attributes.
func (ds *DataSections) SpecializedAttrs() []int { return ds.specIdx }

// NumBees returns how many tuple bees exist for the relation.
func (ds *DataSections) NumBees() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.nCombos - 1
}

// Probes returns the cumulative dictionary probe count.
func (ds *DataSections) Probes() int64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.probes
}

// DictSize returns the number of distinct values for specialized position
// pos (for tests and the storage report).
func (ds *DataSections) DictSize(pos int) int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return len(ds.dicts[pos])
}

// ResolveBee returns the beeID for the tuple's specialized attribute
// values, creating a new tuple bee if this combination has not been seen
// ("Tuple bees are created during the evaluation of tuple insertions and
// updates, deep within the query evaluation loop" — so this path is
// deliberately cheap: a memcmp probe per attribute plus one map lookup).
func (ds *DataSections) ResolveBee(values []types.Datum, prof *profile.Counters) (uint16, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()

	var keyBuf [16]byte
	key := keyBuf[:0]
	for pos, attIdx := range ds.specIdx {
		v := values[attIdx]
		if v.IsNull() {
			return 0, fmt.Errorf("tuple bee: null value in specialized attribute %s.%s",
				ds.rel.Name, ds.rel.Attrs[attIdx].Name)
		}
		id, err := ds.dictLookup(pos, attIdx, v, prof)
		if err != nil {
			return 0, err
		}
		key = append(key, byte(id))
	}
	if beeID, ok := ds.comboIdx[string(key)]; ok {
		return beeID, nil
	}
	if ds.nCombos >= maxCombos {
		return 0, fmt.Errorf("tuple bee: relation %s exceeds %d tuple bees", ds.rel.Name, maxCombos-1)
	}
	beeID := uint16(ds.nCombos)
	ds.nCombos++
	vals := make([]types.Datum, len(ds.specIdx))
	for pos := range ds.specIdx {
		vals[pos] = ds.dicts[pos][key[pos]]
	}
	ds.combos.set(beeID, vals)
	ds.comboIdx[string(key)] = beeID
	prof.Add(profile.CompBee, profile.BeeDictInsert)
	if ds.onNewBee != nil {
		if err := ds.onNewBee(vals); err != nil {
			return 0, err
		}
	}
	return beeID, nil
}

// SetOnNewBee installs fn, invoked under ds.mu whenever ResolveBee
// creates a new tuple bee, with the combo's values in specialized-position
// order. The engine uses it to append the bee-combo WAL record before any
// insert record can reference the new beeID (both happen in the caller's
// statement, in order); fn failing fails the resolve, so a bee the log
// will never know about cannot back an acknowledged tuple.
func (ds *DataSections) SetOnNewBee(fn func(vals []types.Datum) error) {
	ds.mu.Lock()
	ds.onNewBee = fn
	ds.mu.Unlock()
}

// ExportCombos returns every tuple bee's specialized-attribute values in
// beeID order (IDs 1..NumBees). Stored tuples elide these values — the
// beeID in the tuple header is meaningless without the dictionary — so
// checkpoints persist the combos and recovery replays them, in this
// order, through ReplayCombo to reassign identical IDs.
func (ds *DataSections) ExportCombos() [][]types.Datum {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	out := make([][]types.Datum, 0, ds.nCombos-1)
	for id := 1; id < ds.nCombos; id++ {
		out = append(out, append([]types.Datum(nil), ds.combos.get(uint16(id))...))
	}
	return out
}

// ReplayCombo re-creates one tuple bee during crash recovery. Combos must
// arrive in original creation order: the resolve path assigns sequential
// IDs, and the assigned ID is checked against the expected next one so
// any divergence from the crashed instance's assignment surfaces as an
// error instead of silently mis-deforming every recovered tuple.
func (ds *DataSections) ReplayCombo(vals []types.Datum) error {
	if len(vals) != len(ds.specIdx) {
		return fmt.Errorf("tuple bee: replayed combo has %d values, relation %s specializes %d attributes",
			len(vals), ds.rel.Name, len(ds.specIdx))
	}
	ds.mu.Lock()
	want := uint16(ds.nCombos)
	ds.mu.Unlock()
	values := make([]types.Datum, len(ds.rel.Attrs))
	for pos, attIdx := range ds.specIdx {
		values[attIdx] = vals[pos]
	}
	id, err := ds.ResolveBee(values, nil)
	if err != nil {
		return err
	}
	if id != want {
		return fmt.Errorf("tuple bee: replayed combo for %s resolved to beeID %d, want %d",
			ds.rel.Name, id, want)
	}
	return nil
}

// dictLookup probes the dictionary for specialized position pos and
// admits new values into the slab. The probe is a hash lookup on the
// value's stored form (the abstract-instruction cost model still charges
// the paper's memcmp probe; the dictionary is capped at 256 values
// either way).
func (ds *DataSections) dictLookup(pos, attIdx int, v types.Datum, prof *profile.Counters) (int, error) {
	prof.Add(profile.CompBee, profile.BeeDictProbe)
	ds.probes++ // caller holds ds.mu
	a := &ds.rel.Attrs[attIdx]
	var vb []byte
	if a.Type.ByValue() {
		var kb [8]byte
		u := uint64(v.Int64())
		for i := 0; i < 8; i++ {
			kb[i] = byte(u >> (8 * i))
		}
		if i, ok := ds.dictIdx[pos][string(kb[:])]; ok {
			return i, nil
		}
		vb = kb[:]
	} else {
		// Normalize CHAR(n) to its padded stored form so "O" and "O "
		// denote the same dictionary value.
		vb = v.Bytes()
		if a.Type.Kind == types.KindChar && len(vb) < a.Type.Width {
			padded := make([]byte, a.Type.Width)
			copy(padded, vb)
			for i := len(vb); i < a.Type.Width; i++ {
				padded[i] = ' '
			}
			vb = padded
		}
		if i, ok := ds.dictIdx[pos][string(vb)]; ok {
			return i, nil
		}
	}
	dict := ds.dicts[pos]
	if len(dict) >= MaxDictValues {
		return 0, fmt.Errorf("tuple bee: attribute %s.%s exceeds %d distinct values; remove its LOWCARD annotation",
			ds.rel.Name, a.Name, MaxDictValues)
	}
	// Admit: by-value datums are stored directly; byte payloads are
	// copied into the slab so dictionary datums own stable memory.
	stored := v
	if !a.Type.ByValue() {
		b := vb // already padded to the stored-form width
		if len(ds.slab)+len(b) > cap(ds.slab) {
			grow := slabChunk
			if len(b) > grow {
				grow = len(b)
			}
			ns := make([]byte, len(ds.slab), cap(ds.slab)+grow)
			copy(ns, ds.slab)
			ds.slab = ns
		}
		start := len(ds.slab)
		ds.slab = append(ds.slab, b...)
		stored = types.NewBytes(ds.slab[start:start+len(b):start+len(b)], a.Type.Kind)
	}
	prof.Add(profile.CompBee, profile.BeeDictInsert)
	ds.dicts[pos] = append(ds.dicts[pos], stored)
	ds.dictIdx[pos][string(vb)] = len(ds.dicts[pos]) - 1
	return len(ds.dicts[pos]) - 1, nil
}

// StorageSaving reports, for the storage experiment (E9), the bytes that
// tuple-bee specialization removes from each stored tuple of the
// relation: the aligned storage of every specialized attribute.
func (ds *DataSections) StorageSaving() int {
	saved := 0
	for _, i := range ds.specIdx {
		a := &ds.rel.Attrs[i]
		saved += a.Len // fixed-length only; LOWCARD varchar would save its average
	}
	return saved
}
