package core

import (
	"fmt"
	"slices"
	"strings"
	"sync"
)

// This file implements the remaining Query Evaluation Group components of
// the bee architecture (paper Figure 3): the Bee Cache (the repository of
// bees in executable form, written to disk along with the relations), the
// Bee Cache Manager (the in-memory view), the Bee Placement Optimizer
// (which assigns bees to instruction-cache-friendly locations), and the
// Bee Collector (garbage collection of dead bees).

// beeKey identifies one bee in the cache.
type beeKey struct {
	kind string // "relation", "query/EVP", "query/EVJ"
	name string
}

// CacheEntry describes one cached bee for inspection.
type CacheEntry struct {
	Kind   string
	Name   string
	Bytes  int // size of the stored executable form
	OnDisk bool
	// Quarantined is set by Module.CacheEntries for bees currently out of
	// service after a runtime panic.
	Quarantined bool
	// Tier is set by Module.CacheEntries when the adaptive advisor tracks
	// this bee: "pinned", "compiled", "candidate", or "demoted". Demoted
	// bees are evicted from the cache itself but still listed so shell
	// and admin views can show what the advisor switched off.
	Tier string
}

// BeeCache stores every bee's executable form (here: its generated
// template text standing in for the ELF function bodies). Bees are formed
// in memory and flushed to the on-disk cache; on "server start" they
// would be loaded back (Load simulates this).
type BeeCache struct {
	mu        sync.Mutex
	mem       map[beeKey]string
	disk      map[beeKey]string
	writes    int64
	hits      int64
	misses    int64
	evictions int64
}

// CacheStats is a point-in-time summary of bee-cache activity and
// footprint, surfaced through the metrics registry and the \cache shell
// command.
type CacheStats struct {
	MemEntries  int   `json:"mem_entries"`
	DiskEntries int   `json:"disk_entries"`
	MemBytes    int64 `json:"mem_bytes"`
	DiskBytes   int64 `json:"disk_bytes"`
	Writes      int64 `json:"writes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
}

// Stats returns cumulative cache counters and current entry/byte totals.
func (c *BeeCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		MemEntries:  len(c.mem),
		DiskEntries: len(c.disk),
		Writes:      c.writes,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
	}
	for _, v := range c.mem {
		s.MemBytes += int64(len(v))
	}
	for _, v := range c.disk {
		s.DiskBytes += int64(len(v))
	}
	return s
}

func newBeeCache() *BeeCache {
	return &BeeCache{mem: make(map[beeKey]string), disk: make(map[beeKey]string)}
}

func (c *BeeCache) put(k beeKey, code string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem[k] = code
}

func (c *BeeCache) drop(k beeKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.mem[k]; ok {
		c.evictions++
	}
	delete(c.mem, k)
	delete(c.disk, k)
}

// Flush writes all in-memory bees to the on-disk cache ("when the bee
// templates are compiled into object code, the bees are formed and
// flushed to the on-disk bee cache").
func (c *BeeCache) Flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, v := range c.mem {
		if c.disk[k] != v {
			c.disk[k] = v
			c.writes++
			n++
		}
	}
	return n
}

// Load repopulates the in-memory cache from disk (server start).
func (c *BeeCache) Load() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range c.disk {
		c.mem[k] = v
	}
	return len(c.disk)
}

// Get returns the stored executable form of a bee, for inspection.
func (c *BeeCache) Get(kind, name string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.mem[beeKey{kind, name}]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

// Entries lists cached bees sorted by kind then name.
func (c *BeeCache) Entries() []CacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CacheEntry, 0, len(c.mem))
	for k, v := range c.mem {
		_, onDisk := c.disk[k]
		out = append(out, CacheEntry{Kind: k.kind, Name: k.name, Bytes: len(v), OnDisk: onDisk})
	}
	slices.SortFunc(out, func(a, b CacheEntry) int {
		if c := strings.Compare(a.Kind, b.Kind); c != 0 {
			return c
		}
		return strings.Compare(a.Name, b.Name)
	})
	return out
}

// Len returns the number of in-memory bees.
func (c *BeeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.mem)
}

// Placement is the Bee Placement Optimizer: it assigns each bee a range
// of simulated L1 instruction-cache lines disjoint from the lines modeled
// as hot DBMS code, and reports the conflict statistics. The paper found
// the runtime effect trivial (I1 miss rate ≈0.3%) but keeps the component
// to bound cache impact as more bees are added; we reproduce it at
// simulation level (DESIGN.md "Known deviations").
type Placement struct {
	mu        sync.Mutex
	nextLine  int
	assigned  int
	conflicts int
	// parallelPlans counts plans the planner marked parallel-safe: every
	// bee in such a plan is instantiated per worker, so the optimizer
	// knows those placements are duplicated across cores rather than
	// shared (per-core I1 caches make duplicate placement free).
	parallelPlans int64
}

// Simulated I1 geometry: 32 KiB, 64-byte lines.
const (
	icacheLines = 32 * 1024 / 64
	// hotLines models the fraction of I1 occupied by hot DBMS code that
	// bees must avoid.
	hotLines = 384
)

func newPlacement() *Placement { return &Placement{nextLine: hotLines} }

// assign reserves lines for a bee of the given code size and counts a
// conflict whenever the allocator wraps into the hot region.
func (p *Placement) assign(code string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	lines := (len(code) + 63) / 64
	if lines == 0 {
		lines = 1
	}
	start := p.nextLine
	if start+lines > icacheLines {
		start = hotLines
		p.conflicts++
	}
	p.nextLine = start + lines
	p.assigned++
	return start
}

// MarkParallelSafe records that the planner cleared one plan's bees for
// concurrent per-worker invocation.
func (p *Placement) MarkParallelSafe() {
	p.mu.Lock()
	p.parallelPlans++
	p.mu.Unlock()
}

// ParallelSafePlans returns how many plans were marked parallel-safe.
func (p *Placement) ParallelSafePlans() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.parallelPlans
}

// Report summarizes placement activity.
func (p *Placement) Report() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("placement: %d bees, next line %d/%d, %d wrap conflicts, %d parallel-safe plans",
		p.assigned, p.nextLine, icacheLines, p.conflicts, p.parallelPlans)
}

// Assigned returns how many bees have been placed.
func (p *Placement) Assigned() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.assigned
}

// Stats returns the placement decision count and wrap-conflict count.
func (p *Placement) Stats() (assigned, conflicts int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.assigned, p.conflicts
}
