package core

import (
	"testing"

	"microspec/internal/catalog"
	"microspec/internal/expr"
	"microspec/internal/storage/tuple"
	"microspec/internal/types"
)

// Benchmarks comparing the generic deform/fill paths with the GCL/SCL
// bee routines on the paper's case-study relation (orders).

func benchRelStock(b *testing.B) *catalog.Relation {
	c := catalog.New()
	rel, err := c.CreateRelation("orders", ordersSchema(), []int{0}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return rel
}

func BenchmarkGenericDeformOrders(b *testing.B) {
	rel := benchRelStock(b)
	tup, err := tuple.Form(rel, ordersValues("O", "2-HIGH", 0), 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	values := make([]types.Datum, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tuple.SlotDeform(rel, tup, values, 9, nil)
	}
}

func BenchmarkGCLDeformOrders(b *testing.B) {
	m := NewModule(AllRoutines)
	c := catalog.New()
	schema := ordersSchema()
	rel, err := c.CreateRelation("orders", schema, []int{0}, m.SpecMaskFor(schema))
	if err != nil {
		b.Fatal(err)
	}
	rb := m.OnCreateRelation(rel)
	tup, err := m.FormTuple(rel, ordersValues("O", "2-HIGH", 0), nil)
	if err != nil {
		b.Fatal(err)
	}
	values := make([]types.Datum, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.GCL(tup, values, 9, nil)
	}
}

func BenchmarkGCLDeformOrdersNoTupleBees(b *testing.B) {
	m := NewModule(RoutineSet{GCL: true, SCL: true})
	c := catalog.New()
	rel, err := c.CreateRelation("orders", ordersSchema(), []int{0}, nil)
	if err != nil {
		b.Fatal(err)
	}
	rb := m.OnCreateRelation(rel)
	tup, err := m.FormTuple(rel, ordersValues("O", "2-HIGH", 0), nil)
	if err != nil {
		b.Fatal(err)
	}
	values := make([]types.Datum, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.GCL(tup, values, 9, nil)
	}
}

// BenchmarkDeformBatch compares per-tuple deform dispatch against the
// DeformBatch bee form over a page-sized run of tuples (the batch
// executor's unit of work): generic loop, per-tuple GCL calls, and one
// batch-GCL call.
func benchBatchTuples(b *testing.B, m *Module, rel *catalog.Relation, n int) ([][]byte, []expr.Row) {
	b.Helper()
	tups := make([][]byte, n)
	rows := make([]expr.Row, n)
	for i := range tups {
		tup, err := m.FormTuple(rel, ordersValues("O", "2-HIGH", int32(i)), nil)
		if err != nil {
			b.Fatal(err)
		}
		tups[i] = tup
		rows[i] = make(expr.Row, 9)
	}
	return tups, rows
}

func BenchmarkDeformBatchGeneric(b *testing.B) {
	m := NewModule(Stock)
	rel := benchRelStock(b)
	m.OnCreateRelation(rel)
	tups, rows := benchBatchTuples(b, m, rel, 256)
	deform := genericBatchDeform(rel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deform(tups, rows, 9, nil)
	}
}

func BenchmarkDeformBatchPerTupleGCL(b *testing.B) {
	m := NewModule(RoutineSet{GCL: true, SCL: true})
	rel := benchRelStock(b)
	rb := m.OnCreateRelation(rel)
	tups, rows := benchBatchTuples(b, m, rel, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, tup := range tups {
			rb.GCL(tup, rows[j], 9, nil)
		}
	}
}

func BenchmarkDeformBatchGCL(b *testing.B) {
	m := NewModule(RoutineSet{GCL: true, SCL: true})
	rel := benchRelStock(b)
	rb := m.OnCreateRelation(rel)
	tups, rows := benchBatchTuples(b, m, rel, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rb.DeformBatch(tups, rows, 9, nil)
	}
}

func BenchmarkGenericFillOrders(b *testing.B) {
	rel := benchRelStock(b)
	vals := ordersValues("O", "2-HIGH", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuple.Form(rel, vals, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSCLFillOrders(b *testing.B) {
	m := NewModule(AllRoutines)
	c := catalog.New()
	schema := ordersSchema()
	rel, err := c.CreateRelation("orders", schema, []int{0}, m.SpecMaskFor(schema))
	if err != nil {
		b.Fatal(err)
	}
	m.OnCreateRelation(rel)
	vals := ordersValues("O", "2-HIGH", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.FormTuple(rel, vals, nil); err != nil {
			b.Fatal(err)
		}
	}
}
