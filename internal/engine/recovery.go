package engine

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"microspec/internal/catalog"
	"microspec/internal/index/btree"
	"microspec/internal/storage/disk"
	"microspec/internal/storage/heap"
	"microspec/internal/storage/page"
	"microspec/internal/storage/wal"
	"microspec/internal/txn"
	"microspec/internal/types"
)

// This file implements ARIES-style redo-only crash recovery. The write
// side (log records, checkpoints) lives in durability.go and the storage
// packages; the protocol is documented in docs/DURABILITY.md. In short:
//
//  1. Analysis: scan the durable log from its base (which, after the
//     first checkpoint, is always a checkpoint record), stopping at the
//     first torn or corrupt record — the strict-truncation rule: nothing
//     past the damage is trusted. Discarded bytes are probed for an
//     intact record (wal.ProbeDiscarded): finding one proves mid-log
//     corruption rather than a torn tail, and recovery fails instead of
//     silently truncating committed work. The last checkpoint's manifest
//     gives the schema; commit records give the committed set.
//  2. Redo: re-apply insert records in LSN order, gated by each page's
//     LSN so replay is idempotent, for ALL transactions (winners and
//     losers alike — slot numbers only line up if every insert lands).
//     Apply delete records physically, but only for committed
//     transactions and only if the slot is still live.
//  3. Discard: physically delete every insert belonging to a transaction
//     the log does not prove committed — the no-undo counterpart of the
//     steal buffer pool.
//  4. Rebuild: attach heaps over the surviving files (every tuple now
//     reads frozen-and-live), rebuild every B+tree by heap scan, take an
//     end-of-recovery checkpoint (which also drops the torn tail from
//     the log), and finally replay the manifest's prepared-statement
//     texts so hot queries are re-planned and their bees re-compiled
//     before the first client arrives.

// RecoveryStats describes what one recovery pass found and did.
type RecoveryStats struct {
	LogBytes      int64         `json:"log_bytes"`
	Records       int           `json:"records"`
	TornBytes     int           `json:"torn_bytes"`
	HadCheckpoint bool          `json:"had_checkpoint"`
	Relations     int           `json:"relations"`
	Indexes       int           `json:"indexes"`
	CommittedTxns int           `json:"committed_txns"`
	ReplayedBees  int           `json:"replayed_bees"`
	RedoInserts   int           `json:"redo_inserts"`
	RedoDeletes   int           `json:"redo_deletes"`
	Discarded     int           `json:"discarded"`
	PreparedWarm  int           `json:"prepared_warmed"`
	DemotedBees   int           `json:"demoted_bees,omitempty"`
	Elapsed       time.Duration `json:"elapsed_ns"`
}

// demotedRestoreHold is the hysteresis (in advisor cycles) applied to
// denylist entries restored from a manifest: long enough that a restart
// cannot be used to flap a demoted bee back in.
const demotedRestoreHold = 16

// RecoveryStats returns what the last recovery pass did (zero for a
// database opened fresh).
func (db *DB) RecoveryStats() RecoveryStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.recStats
}

// Recover opens a database over the disk image a crashed instance left
// behind, replaying its log to the last durable, committed state.
// cfg.Disk must carry the surviving image (disk.Manager.Crash builds one
// in the harness); Durability.WAL is implied.
func Recover(cfg Config) (*DB, error) {
	db, finish := RecoverDeferred(cfg)
	if err := finish(); err != nil {
		return nil, err
	}
	return db, nil
}

// RecoverDeferred returns the database immediately — flagged recovering,
// so every entry point fails with ErrRecovering — plus the function that
// performs the actual replay and clears the flag. The network server
// uses this to open its listener first: early clients get the typed
// retryable "recovering" error instead of a connection refusal.
func RecoverDeferred(cfg Config) (*DB, func() error) {
	cfg.Durability.WAL = true
	db := Open(cfg)
	db.recovering.Store(true)
	return db, func() error {
		err := db.runRecovery()
		db.recovering.Store(false)
		return err
	}
}

// runRecovery is the full recovery pass described in the file comment.
func (db *DB) runRecovery() error {
	start := time.Now()
	db.mu.Lock()
	st := &db.recStats
	base, data := db.walDev.LogRead()
	recs, end, torn := wal.Scan(base, data)
	st.LogBytes = int64(len(data))
	st.Records = len(recs)
	st.TornBytes = torn
	// The tail rule cannot tell a torn final record from mid-log damage
	// on its own: probe the discarded bytes for an intact record, which
	// proves the log broke before its end. Refuse to recover in that
	// case — replaying the truncated prefix would silently drop the
	// committed work past the damage.
	if torn > 0 {
		if off := wal.ProbeDiscarded(data[end-base:]); off >= 0 {
			db.mu.Unlock()
			return fmt.Errorf("engine: recovery: log corrupt before tail: intact record at LSN %d after undecodable bytes at LSN %d",
				end+uint64(off), end)
		}
	}

	// Analysis: anchor on the LAST checkpoint (an older one can precede
	// it only when a crash hit between a checkpoint's sync and its log
	// truncation) and collect the committed set from the records after it.
	// No transaction spans a checkpoint — checkpoints hold db.mu
	// exclusively — so commits before the anchor concern only state the
	// checkpoint already captured.
	ckptIdx := -1
	var man *manifest
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].Type == wal.TCheckpoint {
			m, err := decodeManifest(recs[i].Manifest)
			if err != nil {
				db.mu.Unlock()
				return err
			}
			man = m
			ckptIdx = i
			break
		}
	}
	st.HadCheckpoint = man != nil
	tail := recs[ckptIdx+1:]
	committed := map[uint64]bool{txn.Frozen: true}
	for i := range tail {
		if tail[i].Type == wal.TCommit {
			committed[tail[i].Xid] = true
			st.CommittedTxns++
		}
	}

	// Rebuild the catalog from the manifest. Heaps are attached only
	// after redo (attach recounts live tuples from the page images), so
	// for now record which files belong to relations.
	rels := make(map[disk.FileID]*catalog.Relation)
	if man != nil {
		for _, mr := range man.Relations {
			rel, err := db.recoverRelationLocked(mr, st)
			if err != nil {
				db.mu.Unlock()
				return err
			}
			rels[disk.FileID(mr.File)] = rel
			st.Relations++
		}
	}

	// Redo + discard against the raw pages.
	if err := db.redoLocked(tail, committed, rels, st); err != nil {
		db.mu.Unlock()
		return err
	}

	// Attach heaps over the recovered pages and rebuild every index.
	if man != nil {
		for _, mr := range man.Relations {
			if err := db.attachHeapLocked(mr); err != nil {
				db.mu.Unlock()
				return err
			}
		}
		for _, mi := range man.Indexes {
			if err := db.rebuildIndexLocked(mi); err != nil {
				db.mu.Unlock()
				return err
			}
			st.Indexes++
		}
	}
	db.ddlGen.Add(1)
	db.dataGen.Add(1)

	// Seed the prepared-text set before the end-of-recovery checkpoint so
	// its manifest carries the texts forward even if none is re-prepared
	// before the next crash.
	if man != nil {
		db.prepMu.Lock()
		for _, text := range man.Prepared {
			if _, ok := db.prepTexts[text]; !ok {
				db.prepTexts[text] = 0
			}
		}
		db.prepMu.Unlock()
	}

	// Restore the advisor's demotion denylist before both the
	// end-of-recovery checkpoint (so the fresh manifest carries it
	// forward) and the warm-restart replay below (so a demoted bee's own
	// prepared text cannot re-compile — resurrect — it).
	if man != nil {
		for _, mb := range man.Demoted {
			db.mod.RestoreDemotedBee(mb.Kind, mb.Name, demotedRestoreHold)
			st.DemotedBees++
		}
	}

	// End-of-recovery checkpoint: flushes the redone pages, writes a
	// fresh manifest, and truncates the log — which also discards the
	// torn tail bytes sitting between the old records and the new
	// checkpoint record.
	if err := db.checkpointLocked(); err != nil {
		db.mu.Unlock()
		return err
	}
	db.mu.Unlock()

	// Warm restart: re-plan and re-compile the manifest's prepared
	// statements (bee cache, plan shapes) before the recovering flag
	// clears. The internal prepare path bypasses the ErrRecovering guard.
	if man != nil && !db.durCfg.NoManifestReplay {
		for _, text := range man.Prepared {
			s, err := db.prepareWith(text, QueryOpts{}, true)
			if err != nil {
				continue // a text planned pre-crash may reference since-dropped schema
			}
			s.Close()
			st.PreparedWarm++
		}
	}
	st.Elapsed = time.Since(start)
	return nil
}

// recoverRelationLocked re-creates one relation's catalog entry, latch,
// and bee-module state from its manifest record, then replays the
// manifest's tuple-bee combos: the resolve path assigns beeIDs
// sequentially, so replaying the combos in the order the manifest
// exported them reassigns the exact IDs the stored tuples reference. The
// heap is attached later, after redo.
func (db *DB) recoverRelationLocked(mr manifestRel, st *RecoveryStats) (*catalog.Relation, error) {
	schema := catalog.Schema{Attrs: make([]catalog.Attribute, len(mr.Attrs))}
	for i, a := range mr.Attrs {
		schema.Attrs[i] = catalog.Attribute{
			Name: a.Name, Type: a.typ(), NotNull: a.NotNull, LowCard: a.LowCard,
		}
	}
	spec := db.mod.SpecMaskFor(schema)
	rel, err := db.cat.CreateRelation(mr.Name, schema, mr.PKey, spec)
	if err != nil {
		return nil, fmt.Errorf("engine: recover relation %s: %w", mr.Name, err)
	}
	db.latches[rel.ID] = &sync.RWMutex{}
	rb := db.mod.OnCreateRelation(rel)
	if len(mr.Bees) > 0 {
		if rb.DataSections == nil {
			return nil, fmt.Errorf("engine: recover relation %s: manifest has %d tuple bees but storage is not specialized",
				mr.Name, len(mr.Bees))
		}
		specIdx := rb.DataSections.SpecializedAttrs()
		for _, md := range mr.Bees {
			vals, err := decodeCombo(rel, specIdx, md)
			if err != nil {
				return nil, err
			}
			if err := rb.DataSections.ReplayCombo(vals); err != nil {
				return nil, fmt.Errorf("engine: recover relation %s: %w", mr.Name, err)
			}
			st.ReplayedBees++
		}
	}
	return rel, db.refreshAccessLocked(rel)
}

// redoLocked replays the post-checkpoint log records against the raw
// pages, then discards the inserts of transactions the log does not
// prove committed.
func (db *DB) redoLocked(tail []wal.Record, committed map[uint64]bool, rels map[disk.FileID]*catalog.Relation, st *RecoveryStats) error {
	type slotRef struct {
		file disk.FileID
		page int
		slot int
	}
	var losers []slotRef
	for i := range tail {
		rec := &tail[i]
		if rec.Type == wal.TBeeCombo {
			// Bee creation replays for ALL transactions in log order, like
			// inserts: beeIDs are assigned sequentially and never rolled
			// back (an aborted statement's bee keeps its slot in the
			// dictionary), so the log's creation order IS the ID sequence.
			rel, ok := rels[rec.File]
			if !ok {
				continue // dropped relation
			}
			if err := db.replayBeeRecordLocked(rel, rec); err != nil {
				return err
			}
			st.ReplayedBees++
			continue
		}
		if rec.Type != wal.TInsert && rec.Type != wal.TDelete {
			continue
		}
		if _, ok := rels[rec.File]; !ok {
			continue // dropped relation, or damage the checkpoint superseded
		}
		hd, err := db.pool.Get(rec.File, rec.Page)
		if err != nil {
			return fmt.Errorf("engine: redo page (%d,%d): %w", rec.File, rec.Page, err)
		}
		p := page.Page(hd.Bytes)
		dirty := false
		switch rec.Type {
		case wal.TInsert:
			if !page.Initialized(p) {
				// A freshly extended page that was never written back is
				// all zeros on disk; format it before replaying into it.
				page.Init(p)
				dirty = true
			}
			if page.LSN(p) < rec.LSN {
				slot, ok := page.AddTuple(p, rec.Tuple)
				if !ok || slot != rec.Slot {
					hd.Unpin(dirty)
					return fmt.Errorf("engine: redo misaligned at (%d,%d) slot %d (got %d, ok=%v)",
						rec.File, rec.Page, rec.Slot, slot, ok)
				}
				page.SetLSN(p, rec.LSN)
				dirty = true
				st.RedoInserts++
			}
			if !committed[rec.Xid] {
				losers = append(losers, slotRef{rec.File, rec.Page, rec.Slot})
			}
		case wal.TDelete:
			// Delete stamps live in the in-memory side table pre-crash, so
			// the record is applied physically here — but only for
			// committed deleters, and only if vacuum had not already
			// reclaimed the slot before the last page flush.
			if committed[rec.Xid] && page.IsLive(p, rec.Slot) {
				if err := page.DeleteTuple(p, rec.Slot); err != nil {
					hd.Unpin(dirty)
					return fmt.Errorf("engine: redo delete (%d,%d) slot %d: %w",
						rec.File, rec.Page, rec.Slot, err)
				}
				dirty = true
				st.RedoDeletes++
			}
		}
		hd.Unpin(dirty)
	}
	// Discard pass: a loser's tuple may be on the page either because
	// redo just put it there or because the pre-crash pool flushed it
	// (steal); both cases end with the slot dead.
	for _, ref := range losers {
		hd, err := db.pool.Get(ref.file, ref.page)
		if err != nil {
			return fmt.Errorf("engine: discard page (%d,%d): %w", ref.file, ref.page, err)
		}
		p := page.Page(hd.Bytes)
		dirty := false
		if page.IsLive(p, ref.slot) {
			if err := page.DeleteTuple(p, ref.slot); err != nil {
				hd.Unpin(false)
				return fmt.Errorf("engine: discard (%d,%d) slot %d: %w", ref.file, ref.page, ref.slot, err)
			}
			dirty = true
			st.Discarded++
		}
		hd.Unpin(dirty)
	}
	return nil
}

// replayBeeRecordLocked applies one bee-combo log record: decode the
// values with the recovered relation's types and push them through the
// same resolve path the crashed instance used, verifying the sequential
// ID assignment lands where the record's position in the log says it must.
func (db *DB) replayBeeRecordLocked(rel *catalog.Relation, rec *wal.Record) error {
	rb := db.mod.RelationBeeFor(rel)
	if rb == nil || rb.DataSections == nil {
		return fmt.Errorf("engine: bee-combo record for %s, which has no specialized storage", rel.Name)
	}
	var md []manifestDatum
	if err := json.Unmarshal(rec.Combo, &md); err != nil {
		return fmt.Errorf("engine: corrupt bee-combo record for %s: %w", rel.Name, err)
	}
	vals, err := decodeCombo(rel, rb.DataSections.SpecializedAttrs(), md)
	if err != nil {
		return err
	}
	if err := rb.DataSections.ReplayCombo(vals); err != nil {
		return fmt.Errorf("engine: replay bee for %s: %w", rel.Name, err)
	}
	return nil
}

// attachHeapLocked reopens one relation's heap over its surviving file
// and refreshes the planner-visible statistics. With the relation's bees
// fully replayed by now, it also re-arms the bee journal so post-recovery
// inserts log their new combos.
func (db *DB) attachHeapLocked(mr manifestRel) error {
	rel, err := db.cat.Lookup(mr.Name)
	if err != nil {
		return err
	}
	h, err := heap.Attach(db.dm, db.pool, rel, db.tm, disk.FileID(mr.File))
	if err != nil {
		return err
	}
	h.SetWAL(db.wal)
	db.heaps[rel.ID] = h
	rel.Stats.RowCount = h.LiveTuples()
	rel.Stats.Pages = int64(h.NumPages())
	db.wireBeeJournal(rel, disk.FileID(mr.File))
	return nil
}

// rebuildIndexLocked re-creates one B+tree from its manifest record by
// scanning the recovered heap — the same backfill as CREATE INDEX, valid
// here for the same reason (exclusive db.mu, no transaction in flight).
func (db *DB) rebuildIndexLocked(mi manifestIndex) error {
	rel, err := db.cat.Lookup(mi.Table)
	if err != nil {
		return fmt.Errorf("engine: recover index %s: %w", mi.Name, err)
	}
	h, ok := db.heaps[rel.ID]
	if !ok {
		return fmt.Errorf("engine: recover index %s: relation %s has no heap", mi.Name, mi.Table)
	}
	ix := &Index{Name: mi.Name, Rel: rel, Cols: mi.Cols, Tree: btree.New(mi.Name, mi.Unique)}
	db.installIDX(ix.Tree, rel, mi.Cols)
	acc, err := db.accessFor(rel)
	if err != nil {
		return err
	}
	values := make([]types.Datum, len(rel.Attrs))
	sc := h.Scan(nil, nil)
	defer sc.Close()
	for {
		tid, tup, ok := sc.Next()
		if !ok {
			break
		}
		acc.deform(tup, values, len(values), nil)
		if err := ix.Tree.Insert(indexKey(values, mi.Cols), tid, nil); err != nil {
			return fmt.Errorf("engine: recover index %s: %w", mi.Name, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	db.addIndexLocked(ix)
	return nil
}
