// Parallel-execution tests: parallel plans must return exactly what the
// serial plans return (TPC-H 1..22, GROUP BY edge cases with empty
// partitions, sorted-run merges), Gather must surface in EXPLAIN ANALYZE
// and the metrics registry, and parallel scans must be race-free against
// concurrent DML on other relations (run with -race).
package engine_test

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/tpch"
	"microspec/internal/types"
)

// datumApproxEqual compares two result datums. Parallel aggregation sums
// float partitions in a different association order than the serial loop,
// so float values may differ in the last ulps; everything else must match
// exactly.
func datumApproxEqual(a, b types.Datum) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	if a.Kind() == types.KindFloat64 && b.Kind() == types.KindFloat64 {
		af, bf := a.Float64(), b.Float64()
		diff := math.Abs(af - bf)
		scale := math.Max(1, math.Max(math.Abs(af), math.Abs(bf)))
		return diff <= 1e-9*scale
	}
	return a.Compare(b) == 0
}

func assertSameResult(t *testing.T, label string, serial, parallel *engine.Result) {
	t.Helper()
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("%s: serial %d rows, parallel %d rows", label, len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		if len(serial.Rows[i]) != len(parallel.Rows[i]) {
			t.Fatalf("%s row %d: width %d vs %d", label, i, len(serial.Rows[i]), len(parallel.Rows[i]))
		}
		for j := range serial.Rows[i] {
			if !datumApproxEqual(serial.Rows[i][j], parallel.Rows[i][j]) {
				t.Fatalf("%s row %d col %d: serial %v, parallel %v",
					label, i, j, serial.Rows[i][j], parallel.Rows[i][j])
			}
		}
	}
}

// TestParallelMatchesSerialTPCH runs all 22 TPC-H queries serially and
// with 4 workers on the same database and requires identical results —
// including row order, which the Gather modes preserve by merging
// partitions in page order.
func TestParallelMatchesSerialTPCH(t *testing.T) {
	db := analyzeDB(t)
	defer db.SetWorkers(2) // restore the golden-test degree
	for q := 1; q <= 22; q++ {
		sql := tpch.Queries()[q]
		db.SetWorkers(1)
		serial, err := db.Query(sql)
		if err != nil {
			t.Fatalf("Q%d serial: %v", q, err)
		}
		db.SetWorkers(4)
		parallel, err := db.Query(sql)
		if err != nil {
			t.Fatalf("Q%d parallel: %v", q, err)
		}
		assertSameResult(t, fmt.Sprintf("Q%d", q), serial, parallel)
	}
}

// parallelDB builds a bee-enabled database with one multi-page table
// ("wide", 5000 rows) whose filtered scans parallelize, plus an unrelated
// "scratch" table for concurrent-DML tests.
func parallelDB(t testing.TB) *engine.DB {
	t.Helper()
	db := engine.Open(engine.Config{Routines: core.AllRoutines, Workers: 4})
	mustDo := func(sql string) {
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustDo(`create table wide (
		w_id integer not null,
		w_grp integer not null,
		w_val double not null,
		w_pad char(40) not null,
		primary key (w_id))`)
	mustDo(`create table scratch (
		s_id integer not null,
		s_note varchar(30) not null,
		primary key (s_id))`)
	for i := 1; i <= 5000; i++ {
		mustDo(fmt.Sprintf(
			"insert into wide values (%d, %d, %d.25, 'pad-%d')", i, i%7, i, i))
	}
	h, err := db.HeapOf("wide")
	if err != nil {
		t.Fatal(err)
	}
	if h.NumPages() < 8 {
		t.Fatalf("wide has %d pages; too small to exercise parallel scans", h.NumPages())
	}
	return db
}

func requireGatherPlan(t *testing.T, db *engine.DB, sql string) {
	t.Helper()
	plan, err := db.ExplainQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Gather workers=") {
		t.Fatalf("expected a Gather plan for %q, got:\n%s", sql, plan)
	}
}

func runSerialAndParallel(t *testing.T, db *engine.DB, sql string) (*engine.Result, *engine.Result) {
	t.Helper()
	db.SetWorkers(1)
	serial, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s serial: %v", sql, err)
	}
	db.SetWorkers(4)
	requireGatherPlan(t, db, sql)
	parallel, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s parallel: %v", sql, err)
	}
	return serial, parallel
}

// TestParallelGroupByEmptyPartitions pins the partial-aggregation merge
// when some (or all) partitions produce no groups: the filter below only
// matches rows in the first pages of the heap, so later partition workers
// return empty tables.
func TestParallelGroupByEmptyPartitions(t *testing.T) {
	db := parallelDB(t)

	sql := "select w_grp, count(*), sum(w_val) from wide where w_id <= 300 group by w_grp"
	serial, parallel := runSerialAndParallel(t, db, sql)
	if len(serial.Rows) != 7 {
		t.Fatalf("expected 7 groups, got %d", len(serial.Rows))
	}
	assertSameResult(t, "group-by/empty-partitions", serial, parallel)

	// Global aggregation where every partition is empty must still yield
	// the single SQL-mandated row (count 0, NULL sum).
	sql = "select count(*), sum(w_val) from wide where w_id < 0"
	serial, parallel = runSerialAndParallel(t, db, sql)
	if len(parallel.Rows) != 1 {
		t.Fatalf("global agg over zero rows: got %d rows, want 1", len(parallel.Rows))
	}
	if parallel.Rows[0][0].Int64() != 0 || !parallel.Rows[0][1].IsNull() {
		t.Fatalf("global agg over zero rows: got %v", parallel.Rows[0])
	}
	assertSameResult(t, "global-agg/empty", serial, parallel)
}

// TestParallelSortMerge pins the sorted-run-merge Gather mode: each
// partition sorts its pages, the gather point k-way merges, and the
// output must equal the serial stable sort byte for byte (ties resolve
// in heap page order in both).
func TestParallelSortMerge(t *testing.T) {
	db := parallelDB(t)
	sql := "select w_id, w_grp from wide where w_val < 2000 order by w_grp, w_id"
	serial, parallel := runSerialAndParallel(t, db, sql)
	if len(serial.Rows) == 0 {
		t.Fatal("sort-merge query returned no rows")
	}
	assertSameResult(t, "sort-merge", serial, parallel)
}

// TestParallelExplainAnalyzeAndMetrics asserts workers=N renders on
// Gather nodes in analyzed plans and that the parallel metrics
// (parallel_queries counter, per-worker histograms) accumulate.
func TestParallelExplainAnalyzeAndMetrics(t *testing.T) {
	db := parallelDB(t)
	db.ResetMetrics()

	out, _, err := db.ExplainAnalyzeQuery("select w_grp, sum(w_val) from wide group by w_grp")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Gather workers=4") {
		t.Fatalf("EXPLAIN ANALYZE missing Gather workers=4:\n%s", out)
	}
	if !strings.Contains(out, "pages=[") {
		t.Fatalf("EXPLAIN ANALYZE missing partial-scan page ranges:\n%s", out)
	}

	if _, err := db.Query("select w_id, w_grp from wide order by w_grp, w_id"); err != nil {
		t.Fatal(err)
	}

	snap := db.MetricsSnapshot()
	if got := snap.Counters["parallel_queries"]; got != 2 {
		t.Fatalf("parallel_queries = %d, want 2", got)
	}
	if snap.Histograms["parallel.worker.agg"].Count == 0 {
		t.Fatal("parallel.worker.agg histogram empty after a parallel aggregation")
	}
	if snap.Histograms["parallel.worker.scan"].Count == 0 {
		t.Fatal("parallel.worker.scan histogram empty after a parallel sort-merge")
	}
	if snap.Counters["bees.parallel_safe_plans"] == 0 {
		t.Fatal("placement optimizer recorded no parallel-safe plans")
	}

	// Serial queries must not count as parallel.
	db.SetWorkers(1)
	if _, err := db.Query("select w_grp, sum(w_val) from wide group by w_grp"); err != nil {
		t.Fatal(err)
	}
	if got := db.MetricsSnapshot().Counters["parallel_queries"]; got != 2 {
		t.Fatalf("serial query bumped parallel_queries to %d", got)
	}
}

// TestParallelScanWithConcurrentDML drives parallel aggregations over
// "wide" while other goroutines insert into and delete from "scratch" —
// the -race validation that partition workers share no mutable state with
// the DML path (buffer pool, bee-call atomics, metrics registry).
func TestParallelScanWithConcurrentDML(t *testing.T) {
	db := parallelDB(t)
	want, err := db.Query("select w_grp, count(*), sum(w_val) from wide group by w_grp")
	if err != nil {
		t.Fatal(err)
	}

	const readers, writers, iters = 4, 2, 15
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				got, err := db.Query("select w_grp, count(*), sum(w_val) from wide group by w_grp")
				if err != nil {
					t.Error(err)
					return
				}
				assertSameResult(t, "concurrent scan", want, got)
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := w*iters + i + 1
				if _, err := db.Exec(fmt.Sprintf(
					"insert into scratch values (%d, 'note-%d')", id, id)); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if _, err := db.Exec(fmt.Sprintf(
						"delete from scratch where s_id = %d", id)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
