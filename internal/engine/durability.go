package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"microspec/internal/catalog"
	"microspec/internal/storage/disk"
	"microspec/internal/storage/wal"
	"microspec/internal/types"
)

// This file is the engine half of the durability subsystem: commit/abort
// logging, the group-commit durability wait, sharp checkpoints with the
// warm-restart manifest, and clean shutdown. The log format and sync
// policies live in internal/storage/wal; crash recovery (the read side of
// everything written here) lives in recovery.go. See docs/DURABILITY.md
// for the full protocol.

// DurabilityConfig selects write-ahead logging and its sync policy.
type DurabilityConfig struct {
	// WAL enables write-ahead logging: every insert and delete stamp is
	// logged, commits block until their commit record is durable, and the
	// buffer pool enforces WAL-before-data on every page write-back.
	// Requires a disk device with a log (disk.Manager, or disk.Faulty over
	// one).
	WAL bool
	// NaiveSync replaces group commit with one unconditional log sync per
	// commit — the fsync-per-commit baseline EXPERIMENTS.md E16 measures
	// group commit against.
	NaiveSync bool
	// NoManifestReplay skips the bee-cache warm restart during recovery:
	// the checkpoint manifest's prepared-statement texts are not
	// re-planned/re-compiled. Used to measure the cold-restart baseline.
	NoManifestReplay bool
}

// ErrRecovering is returned by query, statement, prepare, and bulk-load
// entry points while the database is replaying its log after a crash.
// The wire protocol maps it to a typed, retryable error code distinct
// from shutdown (see internal/wire).
var ErrRecovering = errors.New("engine: database is recovering")

// Recovering reports whether the database is still replaying its log.
// The network server rejects new sessions and in-flight requests with a
// retryable error while this is true.
func (db *DB) Recovering() bool { return db.recovering.Load() }

// WALWriter exposes the log writer (nil when durability is off). The
// chaos harness uses it to arm deterministic crash points.
func (db *DB) WALWriter() *wal.Writer { return db.wal }

// logCommit appends xid's commit record and returns its LSN. The record
// is appended before the in-memory commit flips, so a transaction can
// never be visible without its commit record at least existing in the
// volatile log tail; the caller acknowledges only after waitDurable.
// An append error (the writer was killed) aborts the transaction
// instead: its versions stay stamped with the now-aborted xid, which
// makes them invisible, and vacuum reclaims them — no undo replay
// needed under MVCC.
func (db *DB) logCommit(xid uint64) (uint64, error) {
	if db.wal == nil {
		return 0, nil
	}
	lsn, err := db.wal.Append(&wal.Record{Type: wal.TCommit, Xid: xid})
	if err != nil {
		return 0, fmt.Errorf("engine: commit record append: %w", err)
	}
	db.obs.walCommits.Inc()
	return lsn, nil
}

// logAbort appends xid's abort record, best-effort: the record is an
// optimization for log readers (recovery treats any xid without a commit
// record as aborted), so append failures are ignored.
func (db *DB) logAbort(xid uint64) {
	if db.wal == nil {
		return
	}
	_, _ = db.wal.Append(&wal.Record{Type: wal.TAbort, Xid: xid})
}

// waitDurable blocks until the log is durable through lsn — the group
// commit wait. Callers run it after releasing their table latch and
// db.mu so concurrent committers can pile into one sync batch; that
// reorders visibility before durability, which is safe under prefix
// durability: if a dependent transaction's later commit record is
// durable, every earlier record — including the one waited on here — is
// too.
func (db *DB) waitDurable(lsn uint64) error {
	if db.wal == nil || lsn == 0 {
		return nil
	}
	if err := db.wal.WaitDurable(lsn); err != nil {
		return fmt.Errorf("engine: commit not durable: %w", err)
	}
	return nil
}

// --- Checkpoints ---

// manifest is the checkpoint payload: everything recovery needs to
// rebuild the instance that page images alone cannot carry — the schema
// (relations with their heap files, indexes) and the prepared-statement
// texts whose plans and bees the warm restart re-creates.
type manifest struct {
	Relations []manifestRel   `json:"relations"`
	Indexes   []manifestIndex `json:"indexes"`
	Prepared  []string        `json:"prepared,omitempty"`
	// Demoted is the advisor's denylist: bees demoted for a broken guard
	// assumption. Recovery restores these before the warm-restart replay
	// re-prepares the manifest's statements, so a demoted bee cannot be
	// resurrected by its own prepared text (see docs/ADAPTIVE.md).
	Demoted []manifestBee `json:"demoted,omitempty"`
}

type manifestBee struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
}

type manifestRel struct {
	Name  string         `json:"name"`
	File  uint32         `json:"file"`
	Attrs []manifestAttr `json:"attrs"`
	PKey  []int          `json:"pkey,omitempty"`
	// Bees are the relation's tuple-bee combos in beeID order (1, 2, ...).
	// Stored tuples reference combos by ID and elide the attribute values,
	// so the page images are unreadable without this dictionary; recovery
	// replays it (plus any bee-combo log records after the checkpoint)
	// before deforming a single tuple.
	Bees [][]manifestDatum `json:"bees,omitempty"`
}

// manifestDatum is one specialized-attribute value inside a tuple-bee
// combo, as persisted in checkpoint manifests and bee-combo WAL records:
// by-value kinds carry their raw 8-byte representation in I, character
// kinds their padded stored form in B. The attribute's type — known from
// the relation being recovered — picks the field on decode.
type manifestDatum struct {
	I int64  `json:"i,omitempty"`
	B []byte `json:"b,omitempty"`
}

// comboDatums serializes one combo's values (specialized-position order,
// as handed out by DataSections.ExportCombos or the new-bee hook).
func comboDatums(rel *catalog.Relation, spec []int, vals []types.Datum) []manifestDatum {
	out := make([]manifestDatum, len(vals))
	for pos, attIdx := range spec {
		if rel.Attrs[attIdx].Type.ByValue() {
			out[pos] = manifestDatum{I: vals[pos].I}
		} else {
			out[pos] = manifestDatum{B: vals[pos].Bytes()}
		}
	}
	return out
}

// decodeCombo rebuilds one combo's datums from its manifest form.
func decodeCombo(rel *catalog.Relation, spec []int, md []manifestDatum) ([]types.Datum, error) {
	if len(md) != len(spec) {
		return nil, fmt.Errorf("engine: combo for %s has %d values, want %d", rel.Name, len(md), len(spec))
	}
	vals := make([]types.Datum, len(spec))
	for pos, attIdx := range spec {
		t := rel.Attrs[attIdx].Type
		if t.ByValue() {
			vals[pos] = types.MakeNumeric(md[pos].I, t.Kind)
		} else {
			vals[pos] = types.NewBytes(md[pos].B, t.Kind)
		}
	}
	return vals, nil
}

// wireBeeJournal arranges for every tuple bee rel creates from now on to
// be logged as a bee-combo record. The hook runs under the data section's
// mutex, so the log order of bee-combo records is exactly beeID
// assignment order — which is what lets recovery replay them sequentially
// — and the record always precedes the first insert record referencing
// the new ID (both appends happen in the inserting statement, in order).
// Called at CREATE TABLE and again when recovery finishes replaying a
// relation (replay itself must not re-log).
func (db *DB) wireBeeJournal(rel *catalog.Relation, file disk.FileID) {
	if db.wal == nil {
		return
	}
	rb := db.mod.RelationBeeFor(rel)
	if rb == nil || rb.DataSections == nil {
		return
	}
	spec := rb.DataSections.SpecializedAttrs()
	rb.DataSections.SetOnNewBee(func(vals []types.Datum) error {
		data, err := json.Marshal(comboDatums(rel, spec, vals))
		if err != nil {
			return err
		}
		if _, err := db.wal.Append(&wal.Record{Type: wal.TBeeCombo, File: file, Combo: data}); err != nil {
			return fmt.Errorf("engine: bee-combo record append: %w", err)
		}
		return nil
	})
}

type manifestAttr struct {
	Name    string `json:"name"`
	Kind    uint8  `json:"kind"`
	Width   int    `json:"width,omitempty"`
	NotNull bool   `json:"not_null,omitempty"`
	LowCard bool   `json:"low_card,omitempty"`
}

type manifestIndex struct {
	Name   string `json:"name"`
	Table  string `json:"table"`
	Cols   []int  `json:"cols"`
	Unique bool   `json:"unique,omitempty"`
}

// manifestLocked serializes the instance's schema and prepared-text set.
// Caller holds db.mu exclusively.
func (db *DB) manifestLocked() ([]byte, error) {
	var m manifest
	for _, rel := range db.cat.Relations() {
		h, ok := db.heaps[rel.ID]
		if !ok {
			continue
		}
		mr := manifestRel{Name: rel.Name, File: uint32(h.File()), PKey: rel.PKey}
		for _, a := range rel.Attrs {
			mr.Attrs = append(mr.Attrs, manifestAttr{
				Name: a.Name, Kind: uint8(a.Type.Kind), Width: a.Type.Width,
				NotNull: a.NotNull, LowCard: a.LowCard,
			})
		}
		if rb := db.mod.RelationBeeFor(rel); rb != nil && rb.DataSections != nil {
			spec := rb.DataSections.SpecializedAttrs()
			for _, vals := range rb.DataSections.ExportCombos() {
				mr.Bees = append(mr.Bees, comboDatums(rel, spec, vals))
			}
		}
		m.Relations = append(m.Relations, mr)
	}
	names := make([]string, 0, len(db.indexes))
	for name := range db.indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ix := db.indexes[name]
		m.Indexes = append(m.Indexes, manifestIndex{
			Name: ix.Name, Table: ix.Rel.Name, Cols: ix.Cols, Unique: ix.Tree.Unique,
		})
	}
	db.prepMu.Lock()
	for text := range db.prepTexts {
		m.Prepared = append(m.Prepared, text)
	}
	db.prepMu.Unlock()
	sort.Strings(m.Prepared)
	for _, ti := range db.mod.DemotedBees() {
		m.Demoted = append(m.Demoted, manifestBee{Kind: ti.Kind, Name: ti.Name})
	}
	return json.Marshal(&m)
}

func decodeManifest(data []byte) (*manifest, error) {
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("engine: corrupt checkpoint manifest: %w", err)
	}
	return &m, nil
}

func (a manifestAttr) typ() types.T {
	return types.T{Kind: types.Kind(a.Kind), Width: a.Width}
}

// Checkpoint takes a sharp checkpoint: quiesce, reclaim, flush
// everything, append the manifest record, force it durable, and drop the
// log prefix it supersedes. DDL and bulk loads checkpoint automatically
// (their effects are not logged per-tuple); the admin plane and tests
// call this directly.
func (db *DB) Checkpoint() error {
	if db.recovering.Load() {
		return ErrRecovering
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

// checkpointLocked is the checkpoint body. Caller holds db.mu
// exclusively, which quiesces the instance: every interactive
// transaction and auto-commit statement holds db.mu shared until it
// finishes, so at this point no transaction is in flight and no snapshot
// is registered. That makes the vacuum pass below complete — every
// stamped-dead and aborted version is reclaimable — and after it the
// page images hold exactly the committed live tuples, so the flushed
// files plus the manifest are a full, self-contained copy of the
// database and everything before the checkpoint record can be dropped
// from the log.
func (db *DB) checkpointLocked() error {
	if db.wal == nil {
		return nil
	}
	for _, rel := range db.cat.Relations() {
		h, ok := db.heaps[rel.ID]
		if !ok {
			continue
		}
		handle := relHandle{rel: rel, heap: h, latch: db.latches[rel.ID]}
		handle.latch.Lock()
		_, err := db.vacuumTableLocked(handle, nil)
		handle.latch.Unlock()
		if err != nil {
			return fmt.Errorf("engine: checkpoint vacuum: %w", err)
		}
	}
	// FlushAll runs WAL-before-data per page (the pool's walFlush hook),
	// so every page write-back is already covered by durable log records.
	if err := db.pool.FlushAll(); err != nil {
		return fmt.Errorf("engine: checkpoint flush: %w", err)
	}
	data, err := db.manifestLocked()
	if err != nil {
		return err
	}
	rec := &wal.Record{Type: wal.TCheckpoint, Manifest: data}
	end, err := db.wal.Append(rec)
	if err != nil {
		return fmt.Errorf("engine: checkpoint record append: %w", err)
	}
	start := end - uint64(len(wal.Encode(rec)))
	if err := db.wal.WaitDurable(end); err != nil {
		return fmt.Errorf("engine: checkpoint not durable: %w", err)
	}
	if err := db.walDev.LogTruncatePrefix(start); err != nil {
		return fmt.Errorf("engine: log truncate: %w", err)
	}
	db.obs.checkpoints.Inc()
	return nil
}

// Close shuts the database down cleanly: a final checkpoint (so restart
// replays nothing) and a final log sync. A nil-WAL database has nothing
// to do. Close is not safe to race with in-flight statements; callers
// stop issuing work first (the network server drains sessions before
// closing its DB).
func (db *DB) Close() error {
	db.stopAdvisor()
	if db.wal == nil {
		return nil
	}
	db.mu.Lock()
	err := db.checkpointLocked()
	db.mu.Unlock()
	if cerr := db.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// SimulateCrash kills the log writer in place: every in-flight and
// future append or durability wait fails, exactly as if the process had
// died. The harness follows it with disk.Manager.Crash to build the
// surviving disk image and hands that to Recover.
func (db *DB) SimulateCrash() {
	db.stopAdvisor()
	if db.wal != nil {
		db.wal.Kill()
	}
}

// notePrepared records a prepared statement's text for the checkpoint
// manifest. Texts are never forgotten — Close decrements the live count
// but keeps the key — so a restart re-warms every statement the workload
// has ever prepared, which is the point of the manifest.
func (db *DB) notePrepared(text string) {
	db.prepMu.Lock()
	db.prepTexts[text]++
	db.prepMu.Unlock()
}

func (db *DB) dropPrepared(text string) {
	db.prepMu.Lock()
	if db.prepTexts[text] > 0 {
		db.prepTexts[text]--
	}
	db.prepMu.Unlock()
}

// wireDurability attaches the log writer to a freshly opened DB. Called
// from Open before any relation exists.
func (db *DB) wireDurability(cfg Config) {
	if !cfg.Durability.WAL {
		return
	}
	ld, ok := db.dm.(disk.LogDevice)
	if !ok {
		panic("engine: Config.Durability.WAL requires a log-capable disk device (disk.Manager or disk.Faulty over one)")
	}
	db.walDev = ld
	db.wal = wal.NewWriter(ld, cfg.Durability.NaiveSync)
	db.pool.SetWALFlush(db.wal.WaitDurable)
}
