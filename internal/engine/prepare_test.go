package engine

import (
	"fmt"
	"strings"
	"testing"

	"microspec/internal/core"
	"microspec/internal/types"
)

func TestPreparedSelectPoint(t *testing.T) {
	for _, rs := range []core.RoutineSet{core.Stock, core.AllRoutines} {
		db := setupMini(t, rs)
		st, err := db.Prepare("select e_name, e_salary from emp where e_id = $1")
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		defer st.Close()
		if st.NumParams() != 1 || !st.IsSelect() {
			t.Fatalf("NumParams=%d IsSelect=%v", st.NumParams(), st.IsSelect())
		}
		if cols := st.Columns(); len(cols) != 2 || cols[0].Name != "e_name" {
			t.Fatalf("Columns = %v", cols)
		}
		for id := 1; id <= 20; id++ {
			res, err := st.Query(types.NewInt64(int64(id)))
			if err != nil {
				t.Fatalf("Query($1=%d): %v", id, err)
			}
			if len(res.Rows) != 1 {
				t.Fatalf("id %d: got %d rows", id, len(res.Rows))
			}
			want := fmt.Sprintf("emp-%d", id)
			if got := res.Rows[0][0].Str(); got != want {
				t.Fatalf("id %d: name %q, want %q", id, got, want)
			}
		}
		if st.Executions() != 20 {
			t.Fatalf("Executions = %d", st.Executions())
		}
	}
}

// Prepared executions must reuse the bees created at PREPARE: the module's
// query-bee count stays flat across executions, and EXPLAIN ANALYZE loop
// counts accumulate because it is the same plan tree every time.
func TestPreparedBeeReuse(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	st, err := db.Prepare("select count(*) from emp where e_salary > $1 and e_dept = $2")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	defer st.Close()
	after := db.Module().Stats().QueryBees
	for i := 0; i < 10; i++ {
		if _, err := st.Query(types.NewFloat64(1200), types.NewInt64(2)); err != nil {
			t.Fatalf("Query: %v", err)
		}
	}
	if got := db.Module().Stats().QueryBees; got != after {
		t.Fatalf("query bees grew across executions: %d -> %d (recompiles)", after, got)
	}
	out, _, err := st.ExplainAnalyze(types.NewFloat64(1200), types.NewInt64(2))
	if err != nil {
		t.Fatalf("ExplainAnalyze: %v", err)
	}
	if !strings.Contains(out, "loops=") {
		t.Fatalf("no loop counts in:\n%s", out)
	}
	// Two more analyzed runs on the same instrumented tree: the root's
	// loop counter keeps climbing.
	st.ExplainAnalyze(types.NewFloat64(1200), types.NewInt64(2))
	out, _, err = st.ExplainAnalyze(types.NewFloat64(1200), types.NewInt64(2))
	if err != nil {
		t.Fatalf("ExplainAnalyze: %v", err)
	}
	if !strings.Contains(out, "loops=3") {
		t.Fatalf("loops did not accumulate across executions:\n%s", out)
	}
	snap := db.MetricsSnapshot()
	if snap.Counters["prepared.executions"] < 13 {
		t.Fatalf("prepared.executions = %d", snap.Counters["prepared.executions"])
	}
}

// A prepared point query on an indexed key should plan as an index probe,
// with the parameter evaluated at Open time.
func TestPreparedIndexScan(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	st, err := db.Prepare("select e_name from emp where e_id = $1")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	defer st.Close()
	out, res, err := st.ExplainAnalyze(types.NewInt64(7))
	if err != nil {
		t.Fatalf("ExplainAnalyze: %v", err)
	}
	if !strings.Contains(out, "IndexScan emp via emp_pkey key=($1)") {
		t.Fatalf("expected index probe in plan:\n%s", out)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "emp-7" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// NULL key: equality never matches.
	res, err = st.Query(types.Null)
	if err != nil {
		t.Fatalf("Query(NULL): %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("NULL key matched %d rows", len(res.Rows))
	}
}

// DML between executions must be visible: dataGen invalidates the plan's
// cross-run caches, ddlGen forces a replan.
func TestPreparedInvalidation(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	st, err := db.Prepare("select count(*) from emp where e_dept = $1")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	defer st.Close()
	count := func() int64 {
		res, err := st.Query(types.NewInt64(1))
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		return res.Rows[0][0].Int64()
	}
	before := count()
	mustExec(t, db,
		"insert into emp values (1001, 1, 'emp-1001', 9999.0, date '2000-01-01')")
	if got := count(); got != before+1 {
		t.Fatalf("after insert: count = %d, want %d", got, before+1)
	}
	// DDL: a new index must trigger a replan, not a stale or broken plan.
	mustExec(t, db, "create index emp_dept on emp (e_dept)")
	if got := count(); got != before+1 {
		t.Fatalf("after create index: count = %d, want %d", got, before+1)
	}
	snap := db.MetricsSnapshot()
	if snap.Counters["prepared.replans"] < 1 {
		t.Fatalf("prepared.replans = %d, want >= 1", snap.Counters["prepared.replans"])
	}
	if snap.Counters["prepared.cache_resets"] < 1 {
		t.Fatalf("prepared.cache_resets = %d, want >= 1", snap.Counters["prepared.cache_resets"])
	}
}

func TestPreparedDML(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	ins, err := db.Prepare("insert into dept values ($1, $2, 'R9')")
	if err != nil {
		t.Fatalf("Prepare insert: %v", err)
	}
	defer ins.Close()
	for i := 10; i < 15; i++ {
		n, err := ins.Exec(types.NewInt64(int64(i)), types.NewString(fmt.Sprintf("dept-%d", i)))
		if err != nil || n != 1 {
			t.Fatalf("Exec: n=%d err=%v", n, err)
		}
	}
	upd, err := db.Prepare("update dept set d_name = $2 where d_id = $1")
	if err != nil {
		t.Fatalf("Prepare update: %v", err)
	}
	defer upd.Close()
	if n, err := upd.Exec(types.NewInt64(12), types.NewString("renamed")); err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	res := mustQuery(t, db, "select d_name from dept where d_id = 12")
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "renamed" {
		t.Fatalf("rows = %v", res.Rows)
	}
	del, err := db.Prepare("delete from dept where d_id = $1")
	if err != nil {
		t.Fatalf("Prepare delete: %v", err)
	}
	defer del.Close()
	if n, err := del.Exec(types.NewInt64(14)); err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
}

func TestPreparedErrors(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	// Placeholders outside a prepared statement are a planning error.
	if _, err := db.Query("select * from emp where e_id = $1"); err == nil {
		t.Fatal("ad-hoc $1 accepted")
	}
	st, err := db.Prepare("select * from emp where e_id = $1")
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := st.Query(); err == nil {
		t.Fatal("missing parameter accepted")
	}
	if _, err := st.Exec(types.NewInt64(1)); err == nil {
		t.Fatal("Exec on SELECT accepted")
	}
	st.Close()
	if _, err := st.Query(types.NewInt64(1)); err != ErrStmtClosed {
		t.Fatalf("closed stmt: err = %v", err)
	}
	// Gaps are allowed: the slot array is sized by the highest $n, so a
	// statement using $1 and $3 takes three parameters.
	st3, err := db.Prepare("select * from emp where e_id = $1 and e_dept = $3")
	if err != nil {
		t.Fatalf("Prepare with gap: %v", err)
	}
	defer st3.Close()
	if st3.NumParams() != 3 {
		t.Fatalf("NumParams = %d, want 3", st3.NumParams())
	}
}
