package engine

// This file wires the adaptive specialization advisor (internal/advisor)
// into the engine: the capability closures it acts through, the
// observation hooks on the query and DML paths, and Respecialize — the
// online storage rewrite that flips one attribute's tuple-bee
// dictionary encoding without a restart. See docs/ADAPTIVE.md.

import (
	"fmt"
	"sync"
	"time"

	"microspec/internal/advisor"
	"microspec/internal/catalog"
	"microspec/internal/core"
	"microspec/internal/exec"
	"microspec/internal/index/btree"
	"microspec/internal/sql"
	"microspec/internal/storage/heap"
	"microspec/internal/txn"
	"microspec/internal/types"
)

// wireAdvisor constructs the advisor over this DB's bee module. The
// advisor is always present (so the admin plane can enable it at
// runtime); the background loop starts only when configured on.
func (db *DB) wireAdvisor(cfg Config) {
	db.adv = advisor.New(cfg.Advisor, advisor.Deps{
		Mod: db.mod,
		// Promotions and demotions change which compiles succeed; cached
		// plans must replan to notice, exactly like DDL.
		Invalidate:   func() { db.ddlGen.Add(1) },
		Respecialize: db.Respecialize,
		Attrs:        db.advisorAttrs,
		Promotions:   db.obs.advisorPromotions,
		Demotions:    db.obs.advisorDemotions,
		Skipped:      db.obs.advisorSkipped,
		Cycles:       db.obs.advisorCycles,
	})
	if cfg.Advisor.Enabled {
		db.adv.Start()
	}
}

// Advisor returns the DB's adaptive specialization advisor.
func (db *DB) Advisor() *advisor.Advisor { return db.adv }

// SetAdvisorEnabled toggles the advisor at runtime (the admin plane's
// POST /advisor). Enabling raises the compile gate and starts the
// background loop; either direction invalidates cached plans so the
// gate change takes effect.
func (db *DB) SetAdvisorEnabled(on bool) {
	db.adv.SetEnabled(on)
	if on {
		db.adv.Start()
	}
	db.ddlGen.Add(1)
}

// stopAdvisor terminates the background loop (shutdown paths).
func (db *DB) stopAdvisor() {
	if db.adv != nil {
		db.adv.Stop()
	}
}

// advisorAttrs is the advisor's catalog view: every attribute of every
// user relation with its tiering-relevant flags.
func (db *DB) advisorAttrs() []advisor.AttrMeta {
	var out []advisor.AttrMeta
	for _, rel := range db.cat.Relations() {
		for i, a := range rel.Attrs {
			out = append(out, advisor.AttrMeta{
				Table: rel.Name, Ord: i, Name: a.Name,
				NotNull: a.NotNull, LowCard: a.LowCard,
			})
		}
	}
	return out
}

// advisorObservePlan feeds one executed query into the advisor's
// hot-set: the bees the plan carried, the predicates the tier gate kept
// on the stock path (unserved demand), and the tables read. One
// atomic load when the advisor is off.
func (db *DB) advisorObservePlan(root exec.Node, sel *sql.Select, d time.Duration) {
	if db.adv == nil || !db.adv.Enabled() {
		return
	}
	var compiled, gated []advisor.BeeObs
	exec.WalkBees(root, func(r exec.BeeRef) {
		compiled = append(compiled, advisor.BeeObs{Kind: r.Kind, Name: r.Name})
	})
	exec.WalkNodes(root, func(n exec.Node) {
		switch v := n.(type) {
		case *exec.Filter:
			if v.Compiled == nil && v.Pred != nil {
				gated = append(gated, advisor.BeeObs{Kind: "query/EVP", Name: v.Pred.String()})
			}
		case *exec.BatchFilter:
			if v.Compiled == nil && v.Pred != nil {
				gated = append(gated, advisor.BeeObs{Kind: "query/EVP", Name: v.Pred.String()})
			}
		}
	})
	if len(compiled) == 0 && len(gated) == 0 {
		return
	}
	slow := int64(d) >= db.obs.slowNs.Load()
	db.adv.ObservePlan(selectTables(sel), compiled, gated, slow)
}

// selectTables collects the base tables a SELECT reads (subqueries and
// CTEs included) for bee→relation association.
func selectTables(sel *sql.Select) []string {
	if sel == nil {
		return nil
	}
	var out []string
	var walk func(s *sql.Select)
	walk = func(s *sql.Select) {
		if s == nil {
			return
		}
		for _, c := range s.With {
			walk(c.Sel)
		}
		for _, tr := range s.From {
			switch v := tr.(type) {
			case *sql.BaseTable:
				out = append(out, v.Name)
			case *sql.SubqueryRef:
				walk(v.Sel)
			}
		}
	}
	walk(sel)
	return out
}

// advisorObserveRow feeds one formed row into the advisor's
// per-attribute NDV sketches. One atomic load when the advisor is off.
func (db *DB) advisorObserveRow(rel *catalog.Relation, values []types.Datum) {
	if db.adv == nil || !db.adv.Enabled() {
		return
	}
	db.adv.ObserveRow(rel.Name, values)
}

// advisorNoteDDL tells the advisor a table's schema changed so the next
// cycle demotes the bees watching it.
func (db *DB) advisorNoteDDL(table string) {
	if db.adv != nil {
		db.adv.NoteDDL(table)
	}
}

// Respecialize flips one attribute's tuple-bee dictionary encoding on
// or off, rewriting the relation's storage online: quiesce, vacuum,
// materialize every live row, rebuild the heap under the new
// specialization mask, reinsert (frozen — visible to every snapshot,
// like recovered tuples), rebuild the indexes, and checkpoint so the
// new layout is the durable truth. This is the advisor's actuator for
// attribute promotions (observed NDV below threshold) and drift
// demotions (NDV climbing toward the dictionary cap, where inserts
// would start failing).
func (db *DB) Respecialize(table, attr string, on bool) error {
	if db.recovering.Load() {
		return ErrRecovering
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rel, err := db.cat.Lookup(table)
	if err != nil {
		return err
	}
	ord := -1
	for i := range rel.Attrs {
		if rel.Attrs[i].Name == attr {
			ord = i
			break
		}
	}
	if ord < 0 {
		return fmt.Errorf("engine: respecialize %s: no attribute %q", table, attr)
	}
	if rel.Attrs[ord].LowCard == on {
		return nil // already in the requested state
	}
	if on && !rel.Attrs[ord].NotNull {
		return fmt.Errorf("engine: respecialize %s.%s: nullable attributes cannot be dictionary-encoded", table, attr)
	}
	h := db.heaps[rel.ID]
	if h == nil {
		return fmt.Errorf("engine: respecialize %s: relation has no heap", table)
	}

	// Vacuum first so a nil-snapshot scan sees exactly the committed
	// rows — same quiesced-state argument as the checkpoint's vacuum
	// pass (we hold db.mu exclusively; nothing is in flight).
	handle := relHandle{rel: rel, heap: h, latch: db.latches[rel.ID]}
	if _, err := db.vacuumTableLocked(handle, nil); err != nil {
		return fmt.Errorf("engine: respecialize %s: vacuum: %w", table, err)
	}
	acc, err := db.accessFor(rel)
	if err != nil {
		return err
	}
	var rows [][]types.Datum
	distinct := make(map[uint64]struct{})
	sc := h.Scan(nil, nil)
	for {
		_, tup, ok := sc.Next()
		if !ok {
			break
		}
		vals := make([]types.Datum, len(rel.Attrs))
		acc.deform(tup, vals, len(vals), nil)
		for i := range vals {
			// Deformed byte payloads alias the pinned page; the rewrite
			// outlives the pin, so copy them out.
			if b := vals[i].Bytes(); b != nil {
				vals[i].B = append([]byte(nil), b...)
			}
		}
		if on {
			if vals[ord].IsNull() {
				sc.Close()
				return fmt.Errorf("engine: respecialize %s.%s: NULL value in existing rows", table, attr)
			}
			distinct[vals[ord].Hash()] = struct{}{}
		}
		rows = append(rows, vals)
	}
	sc.Close()
	if err := sc.Err(); err != nil {
		return fmt.Errorf("engine: respecialize %s: scan: %w", table, err)
	}
	if on && len(distinct) >= core.MaxDictValues {
		return fmt.Errorf("engine: respecialize %s.%s: %d distinct values exceed the dictionary cap (%d)",
			table, attr, len(distinct), core.MaxDictValues)
	}

	// Capture what must survive the rebuild, then tear down the old
	// storage exactly like DROP TABLE.
	type idxDef struct {
		name   string
		cols   []int
		unique bool
	}
	var idxs []idxDef
	for _, ix := range db.byRel[rel.ID] {
		idxs = append(idxs, idxDef{name: ix.Name, cols: ix.Cols, unique: ix.Tree.Unique})
	}
	pkey := append([]int(nil), rel.PKey...)
	schema := catalog.Schema{Attrs: make([]catalog.Attribute, len(rel.Attrs))}
	for i, a := range rel.Attrs {
		schema.Attrs[i] = catalog.Attribute{
			Name: a.Name, Type: a.Type, NotNull: a.NotNull, LowCard: a.LowCard,
		}
	}
	schema.Attrs[ord].LowCard = on

	if _, err := db.cat.DropRelation(table); err != nil {
		return err
	}
	if err := db.pool.InvalidateFile(h.File()); err != nil {
		return err
	}
	h.Drop()
	delete(db.heaps, rel.ID)
	for _, ix := range db.byRel[rel.ID] {
		delete(db.indexes, ix.Name)
	}
	delete(db.byRel, rel.ID)
	delete(db.access, rel.ID)
	delete(db.latches, rel.ID)
	db.mod.OnDropRelation(rel)

	// Recreate under the new mask (mirrors createTable) and reload.
	spec := db.mod.SpecMaskFor(schema)
	nrel, err := db.cat.CreateRelation(table, schema, pkey, spec)
	if err != nil {
		return err
	}
	nh := heap.Create(db.dm, db.pool, nrel, db.tm)
	nh.SetWAL(db.wal)
	db.heaps[nrel.ID] = nh
	db.latches[nrel.ID] = &sync.RWMutex{}
	db.mod.OnCreateRelation(nrel)
	db.wireBeeJournal(nrel, nh.File())
	if err := db.refreshAccessLocked(nrel); err != nil {
		return err
	}
	nacc := db.access[nrel.ID]
	for _, vals := range rows {
		tup, err := nacc.form(vals, nil)
		if err != nil {
			return fmt.Errorf("engine: respecialize %s: reform: %w", table, err)
		}
		if _, err := nh.Insert(tup, txn.Frozen, nil); err != nil {
			return fmt.Errorf("engine: respecialize %s: reinsert: %w", table, err)
		}
	}
	nrel.Stats.RowCount = nh.LiveTuples()
	nrel.Stats.Pages = int64(nh.NumPages())
	for _, id := range idxs {
		tree := btree.New(id.name, id.unique)
		db.installIDX(tree, nrel, id.cols)
		ix := &Index{Name: id.name, Rel: nrel, Cols: id.cols, Tree: tree}
		vals := make([]types.Datum, len(nrel.Attrs))
		isc := nh.Scan(nil, nil)
		for {
			tid, tup, ok := isc.Next()
			if !ok {
				break
			}
			nacc.deform(tup, vals, len(vals), nil)
			if err := ix.Tree.Insert(indexKey(vals, id.cols), tid, nil); err != nil {
				isc.Close()
				return fmt.Errorf("engine: respecialize %s: rebuild index %s: %w", table, id.name, err)
			}
		}
		isc.Close()
		if err := isc.Err(); err != nil {
			return err
		}
		db.addIndexLocked(ix)
	}
	db.ddlGen.Add(1)
	// The checkpoint that follows carries the flipped LowCard flag in
	// its manifest, so the new layout is reproduced on recovery (a
	// no-op when WAL is off).
	return db.checkpointLocked()
}
