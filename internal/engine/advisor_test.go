package engine

import (
	"fmt"
	"testing"

	"microspec/internal/advisor"
	"microspec/internal/core"
)

// evpInCache counts real (non-phantom) query/EVP entries in the bee
// cache — phantom rows for demoted bees carry Bytes == 0.
func evpInCache(db *DB) int {
	n := 0
	for _, e := range db.Module().CacheEntries() {
		if e.Kind == "query/EVP" && e.Bytes > 0 {
			n++
		}
	}
	return n
}

func advisorCounter(db *DB, name string) int64 {
	return db.MetricsSnapshot().Counters[name]
}

// heatAndPromote runs q enough times to cross the default HotThreshold,
// runs one advisor cycle, and returns the promoted predicate's name.
func heatAndPromote(t testing.TB, db *DB, q string) string {
	t.Helper()
	for i := 0; i < 4; i++ {
		mustQuery(t, db, q)
	}
	db.Advisor().RunCycle()
	for _, ti := range db.Module().TierSnapshot() {
		if ti.State == core.TierCompiled {
			return ti.Name
		}
	}
	t.Fatalf("no promoted bee after heated cycle; tiers: %+v", db.Module().TierSnapshot())
	return ""
}

// TestAdvisorPromotesHotPredicate: with the tier gate up, a repeated
// predicate starts on the interpreted path, accumulates demand, is
// promoted by one advisor cycle, and compiles on the next execution —
// with identical results throughout.
func TestAdvisorPromotesHotPredicate(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	adv := db.Advisor()
	adv.SetEnabled(true)

	const q = "select e_id from emp where e_salary > 1500.0 order by e_id"
	baseline := mustQuery(t, db, q)
	if n := evpInCache(db); n != 0 {
		t.Fatalf("gate up, but %d EVP bees compiled before promotion", n)
	}

	name := heatAndPromote(t, db, q)
	if got := advisorCounter(db, "advisor.promotions"); got < 1 {
		t.Fatalf("advisor.promotions = %d, want >= 1", got)
	}

	// Next execution compiles the promoted bee; results stay identical.
	r := mustQuery(t, db, q)
	if n := evpInCache(db); n < 1 {
		t.Fatalf("promoted bee %q did not compile on next execution", name)
	}
	if len(r.Rows) != len(baseline.Rows) {
		t.Fatalf("promoted run: %d rows, baseline %d", len(r.Rows), len(baseline.Rows))
	}
	for i := range r.Rows {
		if r.Rows[i][0].Int64() != baseline.Rows[i][0].Int64() {
			t.Fatalf("row %d: %v != %v", i, r.Rows[i][0], baseline.Rows[i][0])
		}
	}

	// The decision trail names the promotion with its reason.
	found := false
	for _, d := range adv.Decisions() {
		if d.Action == "promote-bee" && d.Name == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("no promote-bee decision for %q in %+v", name, adv.Decisions())
	}
}

// TestAdvisorQuarantineDemotesExactlyOnce promotes a bee, panics it via
// the chaos failpoint (which quarantines it), and checks the advisor
// demotes it exactly once — repeated cycles with the quarantine flag
// still set must not demote again or double-count metrics.
func TestAdvisorQuarantineDemotesExactlyOnce(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	adv := db.Advisor()
	adv.SetEnabled(true)

	const q = "select e_id from emp where e_salary > 1500.0 order by e_id"
	baseline := mustQuery(t, db, q)
	name := heatAndPromote(t, db, q)
	mustQuery(t, db, q) // compiles the promoted bee

	db.Module().InjectBeePanic("query/EVP", "")
	res := mustQuery(t, db, q) // panics, quarantines, retries on stock
	db.Module().ClearBeePanic()
	if len(res.Rows) != len(baseline.Rows) {
		t.Fatalf("fallback run: %d rows, baseline %d", len(res.Rows), len(baseline.Rows))
	}

	adv.RunCycle()
	if st, _ := db.Module().TierOf("query/EVP", name); st != core.TierDemoted {
		t.Fatalf("state after quarantine cycle = %v, want demoted", st)
	}
	once := advisorCounter(db, "advisor.demotions")
	if once < 1 {
		t.Fatalf("advisor.demotions = %d, want >= 1", once)
	}
	// The quarantine flag persists; further cycles must be no-ops.
	adv.RunCycle()
	adv.RunCycle()
	if got := advisorCounter(db, "advisor.demotions"); got != once {
		t.Fatalf("demotions flapped: %d → %d", once, got)
	}
	if n := evpInCache(db); n != 0 {
		t.Fatalf("demoted bee still in cache (%d EVP entries)", n)
	}
	// Demoted bees stay visible as phantom cache rows for the shell.
	seen := false
	for _, e := range db.Module().CacheEntries() {
		if e.Name == name && e.Tier == "demoted" {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("demoted bee %q missing from CacheEntries", name)
	}
	r := mustQuery(t, db, q)
	if len(r.Rows) != len(baseline.Rows) {
		t.Fatalf("post-demotion run: %d rows, baseline %d", len(r.Rows), len(baseline.Rows))
	}
}

// TestAdvisorDDLDemotesExactlyOnce promotes a bee watching one table,
// drops the table, and checks the DDL demotion fires exactly once.
func TestAdvisorDDLDemotesExactlyOnce(t *testing.T) {
	db := newDB(t, core.AllRoutines)
	mustExec(t, db,
		`create table watched (w_id integer not null, w_val integer not null, primary key (w_id))`)
	for i := 1; i <= 30; i++ {
		mustExec(t, db, fmt.Sprintf("insert into watched values (%d, %d)", i, i*3))
	}
	adv := db.Advisor()
	adv.SetEnabled(true)

	name := heatAndPromote(t, db, "select w_id from watched where w_val > 30 order by w_id")
	ti, _ := db.Module().TierOf("query/EVP", name)
	if ti != core.TierCompiled {
		t.Fatalf("state = %v, want compiled", ti)
	}

	mustExec(t, db, "drop table watched")
	adv.RunCycle()
	if st, _ := db.Module().TierOf("query/EVP", name); st != core.TierDemoted {
		t.Fatalf("state after DDL cycle = %v, want demoted", st)
	}
	once := advisorCounter(db, "advisor.demotions")
	if once != 1 {
		t.Fatalf("advisor.demotions = %d, want exactly 1", once)
	}
	adv.RunCycle()
	adv.RunCycle()
	if got := advisorCounter(db, "advisor.demotions"); got != once {
		t.Fatalf("DDL demotion flapped: %d → %d", once, got)
	}
	reasoned := false
	for _, d := range adv.Decisions() {
		if d.Action == "demote-bee" && d.Name == name {
			reasoned = d.Reason != ""
		}
	}
	if !reasoned {
		t.Fatalf("DDL demotion missing from decisions: %+v", adv.Decisions())
	}
}

// TestAdvisorRespecializesAttribute exercises the online storage
// rewrite end to end: a low-NDV attribute is dictionary-specialized by
// the advisor, data and indexes survive, and when the sketches later
// see the value distribution drift past DriftNDV the attribute is
// despecialized exactly once.
func TestAdvisorRespecializesAttribute(t *testing.T) {
	db := Open(Config{
		Routines:  core.AllRoutines,
		PoolPages: 1024,
		Advisor:   advisor.Config{MinRows: 8, NDVMax: 4, DriftNDV: 8},
	})
	mustExec(t, db,
		`create table app (id integer not null, status varchar(8) not null, primary key (id))`)
	adv := db.Advisor()
	adv.SetEnabled(true)

	statuses := []string{"new", "open", "done"}
	for i := 1; i <= 24; i++ {
		mustExec(t, db, fmt.Sprintf("insert into app values (%d, '%s')", i, statuses[i%3]))
	}

	attrLowCard := func() bool {
		for _, am := range db.advisorAttrs() {
			if am.Table == "app" && am.Name == "status" {
				return am.LowCard
			}
		}
		t.Fatal("app.status not in catalog")
		return false
	}

	if attrLowCard() {
		t.Fatal("status already specialized before the advisor ran")
	}
	adv.RunCycle()
	if !attrLowCard() {
		t.Fatalf("status not specialized; decisions: %+v", adv.Decisions())
	}

	// Data, primary-key index, and DML all survive the rewrite.
	if n := mustQuery(t, db, "select count(*) from app").Rows[0][0].Int64(); n != 24 {
		t.Fatalf("count after spec = %d, want 24", n)
	}
	if n := mustQuery(t, db, "select count(*) from app where status = 'open'").Rows[0][0].Int64(); n != 8 {
		t.Fatalf("status='open' after spec = %d, want 8", n)
	}
	r := mustQuery(t, db, "select status from app where id = 5")
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != statuses[5%3] {
		t.Fatalf("pk lookup after spec: %v", r.Rows)
	}
	mustExec(t, db, "insert into app values (100, 'new')")

	// Drift: a burst of distinct values pushes observed NDV past
	// DriftNDV → despecialize, exactly once.
	for i := 1; i <= 12; i++ {
		mustExec(t, db, fmt.Sprintf("insert into app values (%d, 's-%d')", 200+i, i))
	}
	adv.RunCycle()
	if attrLowCard() {
		t.Fatalf("status still specialized after drift; decisions: %+v", adv.Decisions())
	}
	despecs := func() int {
		n := 0
		for _, d := range adv.Decisions() {
			if d.Action == "despec-attr" {
				n++
			}
		}
		return n
	}
	if got := despecs(); got != 1 {
		t.Fatalf("despec-attr decisions = %d, want 1", got)
	}
	adv.RunCycle()
	adv.RunCycle()
	if got := despecs(); got != 1 {
		t.Fatalf("despecialization flapped: %d decisions", got)
	}
	if n := mustQuery(t, db, "select count(*) from app").Rows[0][0].Int64(); n != 37 {
		t.Fatalf("count after despec = %d, want 37", n)
	}
	if n := mustQuery(t, db, "select count(*) from app where status = 's-7'").Rows[0][0].Int64(); n != 1 {
		t.Fatalf("drift row lost by despec rewrite")
	}
}

// TestRecoveryHonorsDemotedBees: a sticky (guard-break) demotion lands
// in the checkpoint manifest, and a crash-recovered instance restores
// the denylist — the bee must not be resurrected by the warm-restart
// prepared-statement replay or by later queries.
func TestRecoveryHonorsDemotedBees(t *testing.T) {
	db, dm := durableDB(t, false)
	mustExec(t, db,
		`create table kv (k integer not null, v integer not null, primary key (k))`)
	for i := 1; i <= 50; i++ {
		mustExec(t, db, fmt.Sprintf("insert into kv values (%d, %d)", i, i))
	}
	adv := db.Advisor()
	adv.SetEnabled(true)

	const q = "select k from kv where v > 10 order by k"
	// Prepare it too: the statement text lands in the manifest, so warm
	// restart will replay (re-plan) it during recovery.
	if _, err := db.Prepare(q); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	name := heatAndPromote(t, db, q)
	mustQuery(t, db, q) // compiles the promoted bee

	db.Module().Quarantine("query/EVP", name)
	adv.RunCycle() // sticky demotion
	if st, _ := db.Module().TierOf("query/EVP", name); st != core.TierDemoted {
		t.Fatalf("state = %v, want demoted before crash", st)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	rdb := crashRecover(t, db, dm, 0)
	if got := rdb.RecoveryStats().DemotedBees; got < 1 {
		t.Fatalf("RecoveryStats.DemotedBees = %d, want >= 1", got)
	}
	if st, ok := rdb.Module().TierOf("query/EVP", name); !ok || st != core.TierDemoted {
		t.Fatalf("recovered state = %v (known=%v), want demoted", st, ok)
	}
	// The prepared replay already ran; the denylisted bee must not be
	// back in the cache, and fresh executions stay on the stock path.
	if n := evpInCache(rdb); n != 0 {
		t.Fatalf("recovery resurrected %d EVP bees", n)
	}
	r := mustQuery(t, rdb, q)
	if len(r.Rows) != 40 {
		t.Fatalf("recovered query: %d rows, want 40", len(r.Rows))
	}
	if n := evpInCache(rdb); n != 0 {
		t.Fatalf("denylisted bee recompiled after recovery")
	}
}
