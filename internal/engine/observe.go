package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"microspec/internal/exec"
	"microspec/internal/metrics"
	"microspec/internal/storage/disk"
	"microspec/internal/trace"
)

// This file is the engine's observability layer: one metrics registry per
// database instance, query-level latency histograms split by bee-enabled
// vs. stock mode, a ring-buffer slow-query log, and snapshot collectors
// that pull the internal statistics of every subsystem (buffer pool,
// simulated disk, heaps, indexes, bee module) into one unified view.

// DefaultSlowQueryThreshold is the initial slow-query log threshold.
const DefaultSlowQueryThreshold = 100 * time.Millisecond

// slowLogSize is the slow-query ring-buffer capacity.
const slowLogSize = 64

// slowSQLMax truncates logged statement text.
const slowSQLMax = 300

// SlowQuery is one slow-query log entry.
type SlowQuery struct {
	SQL      string        `json:"sql"`
	Duration time.Duration `json:"duration_ns"`
	Rows     int64         `json:"rows"`
	Mode     string        `json:"mode"` // "bee" or "stock"; DML is tagged "dml"
	When     time.Time     `json:"when"`
	// TraceID is the request's trace ID when it was traced (zero
	// otherwise), so a slow entry can be cross-referenced with /traces.
	TraceID uint64 `json:"trace_id,omitempty"`
}

// observer bundles the per-database registry, the pre-resolved hot-path
// metrics, and the slow-query log.
type observer struct {
	reg     *metrics.Registry
	tracer  *trace.Tracer
	beeMode atomic.Bool
	slowNs  atomic.Int64

	queries      *metrics.Counter
	statements   *metrics.Counter
	queryErrors  *metrics.Counter
	rowsReturned *metrics.Counter
	rowsAffected *metrics.Counter
	analyzed     *metrics.Counter
	parallel     *metrics.Counter

	// Batch-execution counters (see DESIGN.md §10).
	batchQueries *metrics.Counter
	batchBatches *metrics.Counter
	batchRows    *metrics.Counter

	// Fault-tolerance counters (see DESIGN.md §9).
	queriesCancelled  *metrics.Counter
	queriesTimedOut   *metrics.Counter
	queryPanics       *metrics.Counter
	quarantineRetries *metrics.Counter

	// Prepared-statement counters (see prepare.go and DESIGN.md §11).
	prepares        *metrics.Counter
	preparedExecs   *metrics.Counter
	preparedReplans *metrics.Counter
	preparedResets  *metrics.Counter

	// Adaptive-advisor counters (see internal/advisor and
	// docs/ADAPTIVE.md): decision cycles, promotions (bee or
	// attribute), demotions, and promotions skipped by the budget.
	advisorPromotions *metrics.Counter
	advisorDemotions  *metrics.Counter
	advisorSkipped    *metrics.Counter
	advisorCycles     *metrics.Counter

	// Transaction-bee counters (see txnbee.go and DESIGN.md §15):
	// fused executions, DDL-driven replans, and quarantine fallbacks to
	// the statement-at-a-time path.
	txnBeeExecs     *metrics.Counter
	txnBeeReplans   *metrics.Counter
	txnBeeFallbacks *metrics.Counter

	// Concurrency-control counters (see docs/CONCURRENCY.md and
	// DESIGN.md §13): first-updater-wins losses and vacuum activity.
	txnConflicts    *metrics.Counter
	vacuumRuns      *metrics.Counter
	vacuumReclaimed *metrics.Counter

	// Durability counters (see docs/DURABILITY.md and DESIGN.md §14).
	walCommits  *metrics.Counter
	checkpoints *metrics.Counter

	latBee     *metrics.Histogram
	latStock   *metrics.Histogram
	latStmt    *metrics.Histogram
	latExecute *metrics.Histogram
	latParScan *metrics.Histogram
	latParAgg  *metrics.Histogram

	mu   sync.Mutex
	ring [slowLogSize]SlowQuery
	next int
	n    int
}

func newObserver() *observer {
	reg := metrics.NewRegistry()
	o := &observer{
		reg:          reg,
		tracer:       trace.NewTracer(),
		queries:      reg.Counter("query.count"),
		statements:   reg.Counter("stmt.count"),
		queryErrors:  reg.Counter("query.errors"),
		rowsReturned: reg.Counter("query.rows_returned"),
		rowsAffected: reg.Counter("stmt.rows_affected"),
		analyzed:     reg.Counter("query.analyzed"),
		parallel:     reg.Counter("parallel_queries"),

		batchQueries: reg.Counter("batch_queries"),
		batchBatches: reg.Counter("batch.batches"),
		batchRows:    reg.Counter("batch.rows"),

		queriesCancelled:  reg.Counter("queries_cancelled"),
		queriesTimedOut:   reg.Counter("queries_timed_out"),
		queryPanics:       reg.Counter("query_panics"),
		quarantineRetries: reg.Counter("quarantine_retries"),

		prepares:        reg.Counter("prepared.count"),
		preparedExecs:   reg.Counter("prepared.executions"),
		preparedReplans: reg.Counter("prepared.replans"),
		preparedResets:  reg.Counter("prepared.cache_resets"),

		advisorPromotions: reg.Counter("advisor.promotions"),
		advisorDemotions:  reg.Counter("advisor.demotions"),
		advisorSkipped:    reg.Counter("advisor.skipped"),
		advisorCycles:     reg.Counter("advisor.cycles"),

		txnBeeExecs:     reg.Counter("txn_bee.executions"),
		txnBeeReplans:   reg.Counter("txn_bee.replans"),
		txnBeeFallbacks: reg.Counter("txn_bee.fallbacks"),

		txnConflicts:    reg.Counter("txn.conflicts"),
		vacuumRuns:      reg.Counter("vacuum.runs"),
		vacuumReclaimed: reg.Counter("vacuum.reclaimed"),

		walCommits:  reg.Counter("wal.commits"),
		checkpoints: reg.Counter("checkpoint.count"),

		latBee:     reg.Histogram("query.latency.bee"),
		latStock:   reg.Histogram("query.latency.stock"),
		latStmt:    reg.Histogram("stmt.latency"),
		latExecute: reg.Histogram("query.latency.execute"),
		latParScan: reg.Histogram("parallel.worker.scan"),
		latParAgg:  reg.Histogram("parallel.worker.agg"),
	}
	o.slowNs.Store(int64(DefaultSlowQueryThreshold))
	return o
}

func (o *observer) mode() string {
	if o.beeMode.Load() {
		return "bee"
	}
	return "stock"
}

// observeQuery records one SELECT: counters, the mode-split latency
// histogram, and (past the threshold) a slow-query log entry. traceID is
// the request's trace ID (zero when untraced), stamped into slow entries.
func (o *observer) observeQuery(sql string, d time.Duration, rows int64, err error, traceID uint64) {
	o.queries.Inc()
	if err != nil {
		o.queryErrors.Inc()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			o.queriesTimedOut.Inc()
		case errors.Is(err, context.Canceled):
			o.queriesCancelled.Inc()
		default:
			var pe *exec.PanicError
			if errors.As(err, &pe) {
				o.queryPanics.Inc()
			}
		}
		return
	}
	o.rowsReturned.Add(rows)
	if o.beeMode.Load() {
		o.latBee.Observe(d)
	} else {
		o.latStock.Observe(d)
	}
	o.noteSlow(sql, d, rows, o.mode(), traceID)
}

// observeStmt records one DDL/DML statement.
func (o *observer) observeStmt(sql string, d time.Duration, rows int64, err error, traceID uint64) {
	o.statements.Inc()
	if err != nil {
		o.queryErrors.Inc()
		return
	}
	o.rowsAffected.Add(rows)
	o.latStmt.Observe(d)
	o.noteSlow(sql, d, rows, "dml", traceID)
}

// observeExecute records one EXECUTE of a prepared SELECT: the shared
// query counters/histograms plus the execute-path latency histogram
// (EXECUTE skips parse and usually plan, so its latency distribution is
// the headline number for the prepared-statement experiment, E13).
func (o *observer) observeExecute(sql string, d time.Duration, rows int64, err error, traceID uint64) {
	o.preparedExecs.Inc()
	o.observeQuery(sql, d, rows, err, traceID)
	if err == nil {
		o.latExecute.Observe(d)
	}
}

// observeExecuteStmt records one EXECUTE of a prepared DML statement.
func (o *observer) observeExecuteStmt(sql string, d time.Duration, rows int64, err error, traceID uint64) {
	o.preparedExecs.Inc()
	o.observeStmt(sql, d, rows, err, traceID)
	if err == nil {
		o.latExecute.Observe(d)
	}
}

func (o *observer) noteSlow(sql string, d time.Duration, rows int64, mode string, traceID uint64) {
	thresh := o.slowNs.Load()
	if thresh <= 0 || int64(d) < thresh {
		return
	}
	sql = strings.TrimSpace(sql)
	if len(sql) > slowSQLMax {
		sql = sql[:slowSQLMax] + "..."
	}
	o.mu.Lock()
	o.ring[o.next] = SlowQuery{SQL: sql, Duration: d, Rows: rows, Mode: mode, When: time.Now(), TraceID: traceID}
	o.next = (o.next + 1) % slowLogSize
	if o.n < slowLogSize {
		o.n++
	}
	o.mu.Unlock()
}

// slowQueries returns the logged entries, most recent first.
func (o *observer) slowQueries() []SlowQuery {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]SlowQuery, 0, o.n)
	for i := 0; i < o.n; i++ {
		out = append(out, o.ring[(o.next-1-i+2*slowLogSize)%slowLogSize])
	}
	return out
}

func (o *observer) resetSlow() {
	o.mu.Lock()
	o.next, o.n = 0, 0
	o.mu.Unlock()
}

// observeParallel folds a finished plan's Gather worker statistics into
// the parallel-execution metrics: the parallel_queries counter and the
// per-worker scan/agg latency histograms (one observation per partition
// worker run).
func (o *observer) observeParallel(root exec.Node) {
	found := false
	exec.WalkGathers(root, func(g *exec.Gather) {
		found = true
		for _, ws := range g.WorkerStats() {
			if ws.Agg {
				o.latParAgg.Observe(ws.Elapsed)
			} else {
				o.latParScan.Observe(ws.Elapsed)
			}
		}
	})
	if found {
		o.parallel.Inc()
	}
}

// foldNodeStats accumulates an analyzed plan's per-node statistics into
// per-node-type registry counters, so EXPLAIN ANALYZE runs feed the
// unified executor metrics (exec.node.<Type>.rows / .time_ns / .loops,
// plus .batches for batch-path nodes).
func (o *observer) foldNodeStats(root exec.Node) {
	o.analyzed.Inc()
	exec.WalkNodes(root, func(n exec.Node) {
		switch in := n.(type) {
		case *exec.Instrumented:
			name := "exec.node." + exec.NodeTypeName(in.Inner)
			o.reg.Counter(name + ".rows").Add(in.Rows)
			o.reg.Counter(name + ".loops").Add(in.Loops)
			o.reg.Counter(name + ".time_ns").Add(int64(in.Elapsed))
		case *exec.InstrumentedBatch:
			name := "exec.node." + exec.NodeTypeName(in.Inner)
			o.reg.Counter(name + ".rows").Add(in.Rows)
			o.reg.Counter(name + ".batches").Add(in.Batches)
			o.reg.Counter(name + ".loops").Add(in.Loops)
			o.reg.Counter(name + ".time_ns").Add(int64(in.Elapsed))
		}
	})
}

// observeBatch folds a finished plan's batch-scan statistics into the
// batch-execution counters: how many queries took the batch path and how
// many batches/rows moved through it.
func (o *observer) observeBatch(root exec.Node) {
	var batches, rows int64
	found := false
	exec.WalkNodes(root, func(n exec.Node) {
		if bs, ok := n.(*exec.BatchSeqScan); ok {
			found = true
			b, r := bs.BatchStats()
			batches += b
			rows += r
		}
	})
	if !found {
		return
	}
	o.batchQueries.Inc()
	o.batchBatches.Add(batches)
	o.batchRows.Add(rows)
}

// --- public DB surface ---

// Metrics exposes the database's metrics registry (for tests and
// embedding applications that want to add their own instruments).
func (db *DB) Metrics() *metrics.Registry { return db.obs.reg }

// MetricsSnapshot returns a point-in-time copy of every metric, including
// the collector-backed subsystem statistics.
func (db *DB) MetricsSnapshot() metrics.Snapshot { return db.obs.reg.Snapshot() }

// Tracer exposes the database's request tracer. Tracing is off by
// default; callers enable it with Tracer().Enable(sampleN) and start
// request traces via Tracer().Start.
func (db *DB) Tracer() *trace.Tracer { return db.obs.tracer }

// SetSlowQueryThreshold sets the slow-query log threshold; zero or
// negative disables logging.
func (db *DB) SetSlowQueryThreshold(d time.Duration) { db.obs.slowNs.Store(int64(d)) }

// SlowQueryThreshold returns the current slow-query log threshold.
func (db *DB) SlowQueryThreshold() time.Duration {
	return time.Duration(db.obs.slowNs.Load())
}

// SlowQueries returns the slow-query log, most recent first.
func (db *DB) SlowQueries() []SlowQuery { return db.obs.slowQueries() }

// ResetMetrics zeroes every registry counter and histogram, the
// slow-query log, and the cumulative buffer-pool and disk statistics.
func (db *DB) ResetMetrics() {
	db.obs.reg.Reset()
	db.obs.resetSlow()
	db.pool.ResetStats()
	db.dm.ResetStats()
}

// registerCollectors wires the snapshot-time pulls from every subsystem.
// Called once from Open, after the subsystems exist.
func (db *DB) registerCollectors() {
	db.obs.reg.RegisterCollector(func(s *metrics.Snapshot) {
		// Storage layer.
		hits, misses, writeBacks := db.pool.Stats()
		s.SetCounter("buffer.hits", hits)
		s.SetCounter("buffer.misses", misses)
		s.SetCounter("buffer.write_backs", writeBacks)
		s.SetGauge("buffer.capacity_pages", int64(db.pool.Capacity()))
		reads, writes, simIO := db.dm.Stats()
		s.SetCounter("disk.page_reads", reads)
		s.SetCounter("disk.page_writes", writes)
		s.SetCounter("disk.sim_io_ns", int64(simIO))
		s.SetCounter("catalog.lookups", db.cat.Lookups())

		// Fault tolerance: buffer-pool retry/corruption counters, and
		// (when the page store is a fault-injecting wrapper) the
		// injected-fault schedule counts.
		readRetries, checksumFails, unpinErrs := db.pool.FaultStats()
		s.SetCounter("disk_read_retries", readRetries)
		s.SetCounter("checksum_failures", checksumFails)
		s.SetCounter("buffer.unpin_errors", unpinErrs)
		if fd, ok := db.dm.(*disk.Faulty); ok {
			fs := fd.FaultStats()
			s.SetCounter("disk_faults_injected", fs.Injected)
			s.SetCounter("disk.faults.read_errs", fs.ReadErrs)
			s.SetCounter("disk.faults.bit_flips", fs.BitFlips)
			s.SetCounter("disk.faults.torn_writes", fs.TornWrites)
			s.SetCounter("disk.faults.latency_spikes", fs.LatencySpikes)
		}

		// Transaction manager.
		started, committed, aborted, snaps := db.tm.Counters()
		s.SetCounter("txn.started", started)
		s.SetCounter("txn.committed", committed)
		s.SetCounter("txn.aborted", aborted)
		s.SetGauge("txn.snapshots_active", snaps)
		s.SetGauge("txn.horizon", int64(db.tm.Horizon()))

		// Heaps and indexes (under the engine lock: DDL mutates the maps).
		db.mu.RLock()
		var pages, live, inserts, dead int64
		for _, h := range db.heaps {
			pages += int64(h.NumPages())
			live += h.LiveTuples()
			inserts += h.Inserts()
			dead += h.DeadVersions()
		}
		var searches, splits int64
		for _, ix := range db.indexes {
			se, sp := ix.Tree.Stats()
			searches += se
			splits += sp
		}
		nIndexes := len(db.indexes)
		nRels := len(db.heaps)
		db.mu.RUnlock()
		s.SetGauge("heap.relations", int64(nRels))
		s.SetGauge("heap.pages", pages)
		s.SetGauge("heap.live_tuples", live)
		s.SetGauge("heap.dead_versions", dead)
		s.SetCounter("heap.inserts", inserts)
		s.SetGauge("index.count", int64(nIndexes))
		s.SetCounter("index.searches", searches)
		s.SetCounter("index.splits", splits)

		// Bee module.
		st := db.mod.Stats()
		s.SetGauge("bees.relation", int64(st.RelationBees))
		s.SetGauge("bees.tuple", int64(st.TupleBees))
		s.SetGauge("bees.query", int64(st.QueryBees))
		s.SetGauge("bees.txn", int64(st.TxnBees))
		s.SetCounter("bees.calls.gcl", st.GCLCalls)
		s.SetCounter("bees.calls.scl", st.SCLCalls)
		s.SetCounter("bees.calls.evp", st.EVPCalls)
		s.SetCounter("bees.calls.evj", st.EVJCalls)
		s.SetCounter("bees.calls.eva", st.EVACalls)
		s.SetCounter("bees_quarantined", st.Quarantined)
		s.SetGauge("bees.quarantined_now", int64(st.QuarantinedNow))
		s.SetCounter("bees.dict_probes", db.mod.TupleBeeProbes())
		cs := db.mod.Cache().Stats()
		s.SetGauge("beecache.mem_entries", int64(cs.MemEntries))
		s.SetGauge("beecache.disk_entries", int64(cs.DiskEntries))
		s.SetGauge("beecache.mem_bytes", cs.MemBytes)
		s.SetGauge("beecache.disk_bytes", cs.DiskBytes)
		s.SetCounter("beecache.writes", cs.Writes)
		s.SetCounter("beecache.hits", cs.Hits)
		s.SetCounter("beecache.misses", cs.Misses)
		s.SetCounter("beecache.evictions", cs.Evictions)
		assigned, conflicts := db.mod.Placement().Stats()
		s.SetGauge("bees.placed", int64(assigned))
		s.SetCounter("bees.placement_conflicts", int64(conflicts))
		s.SetCounter("bees.parallel_safe_plans", db.mod.Placement().ParallelSafePlans())

		// Per-bee benefit attribution, rolled up (see core.BeeBenefits;
		// the admin plane's /bees serves the per-bee breakdown).
		var benRows, benNs, benSaved int64
		for _, b := range db.mod.BeeBenefits() {
			benRows += b.Rows
			benNs += b.ObservedNs
			benSaved += b.EstSavedNs
		}
		s.SetCounter("bees.benefit.rows", benRows)
		s.SetCounter("bees.benefit.observed_ns", benNs)
		s.SetCounter("bees.benefit.est_saved_ns", benSaved)

		// Durability: WAL, group commit, and recovery (see
		// docs/DURABILITY.md). wal.fsyncs_per_commit_milli is the headline
		// group-commit ratio — fsyncs per committed transaction ×1000 —
		// which drops well below 1000 when batching is effective.
		if db.wal != nil {
			appends, syncs := db.walDev.LogStats()
			s.SetCounter("wal.appends", appends)
			s.SetCounter("wal.fsyncs", syncs)
			s.SetCounter("wal.flush_stalls", db.pool.WALStalls())
			batches, waits := db.wal.Stats()
			s.SetCounter("group_commit.sync_batches", batches)
			s.SetCounter("group_commit.sync_waits", waits)
			if commits := db.obs.walCommits.Load(); commits > 0 {
				s.SetGauge("wal.fsyncs_per_commit_milli", syncs*1000/commits)
			}
			rs := db.RecoveryStats()
			s.SetCounter("recovery.records_replayed", int64(rs.Records))
			s.SetCounter("recovery.redo_inserts", int64(rs.RedoInserts))
			s.SetCounter("recovery.redo_deletes", int64(rs.RedoDeletes))
			s.SetCounter("recovery.replayed_bees", int64(rs.ReplayedBees))
			s.SetCounter("recovery.discarded_txns", int64(rs.Discarded))
			s.SetCounter("recovery.prepared_warm", int64(rs.PreparedWarm))
			s.SetCounter("recovery.torn_bytes", int64(rs.TornBytes))
			s.SetCounter("recovery.elapsed_ns", int64(rs.Elapsed))
		}

		// Tracing plane.
		s.SetCounter("trace.started", db.obs.tracer.Started())
	})
}
