// Package engine is the database facade: it wires the catalog, storage,
// bee module, planner, and executor into a usable DBMS with DDL, DML,
// queries, secondary indexes, and transaction rollback. One DB is one
// database instance; the paper's experiments run two instances side by
// side — a stock one (core.Stock) and a bee-enabled one
// (core.AllRoutines) — over identical data.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"microspec/internal/advisor"
	"microspec/internal/catalog"
	"microspec/internal/core"
	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/index/btree"
	"microspec/internal/plan"
	"microspec/internal/profile"
	"microspec/internal/sql"
	"microspec/internal/storage/buffer"
	"microspec/internal/storage/disk"
	"microspec/internal/storage/heap"
	"microspec/internal/storage/wal"
	"microspec/internal/trace"
	"microspec/internal/txn"
	"microspec/internal/types"
)

// Config controls a database instance.
type Config struct {
	// Routines selects the micro-specializations (core.Stock for the
	// stock DBMS, core.AllRoutines for the fully bee-enabled one).
	Routines core.RoutineSet
	// PoolPages is the buffer-pool capacity in pages (default 32768,
	// 256 MiB — enough to hold the benchmark datasets warm).
	PoolPages int
	// Latency is the simulated disk latency model (zero = warm-only).
	Latency disk.LatencyModel
	// Workers is the intra-query parallelism degree: the maximum number
	// of partition workers a Gather node runs concurrently. Zero means
	// runtime.GOMAXPROCS(0); 1 disables parallel plans.
	Workers int
	// Disk overrides the page store. Nil means a plain disk.Manager with
	// the Latency model; the chaos harness passes a *disk.Faulty here.
	Disk disk.Device
	// StatementTimeout bounds every query's execution; zero means no
	// limit. Adjustable later with SetStatementTimeout.
	StatementTimeout time.Duration
	// NoBatch disables the batch-at-a-time executor path (on by default;
	// see internal/plan/batch.go). Adjustable later with SetBatch.
	NoBatch bool
	// VacuumEvery is the per-table dead-version threshold above which a
	// DML commit triggers a vacuum pass on its table. Zero selects
	// DefaultVacuumEvery; negative disables automatic vacuum (DB.Vacuum
	// still works).
	VacuumEvery int
	// Durability selects write-ahead logging, crash recovery, and the
	// commit sync policy (see durability.go and docs/DURABILITY.md).
	Durability DurabilityConfig
	// Advisor configures the adaptive specialization advisor: the
	// background loop that promotes hot predicates and low-NDV
	// attributes and demotes bees whose guard assumptions break (see
	// internal/advisor and docs/ADAPTIVE.md).
	Advisor advisor.Config
}

// DB is one database instance.
type DB struct {
	// mu is the engine's outermost lock, and under MVCC it is almost
	// always held in *shared* mode: queries, DML statements, and
	// interactive transactions all take RLock and rely on snapshots plus
	// the per-table latches below for isolation. Exclusive mode is
	// reserved for operations that restructure the instance itself — DDL,
	// SetRoutines, BulkLoad, cache drops — which quiesce everything.
	// Lock ordering: db.mu → table latch → heap page latch (leaf); never
	// two table latches at once. See docs/CONCURRENCY.md.
	mu sync.RWMutex

	// tm issues transaction IDs, tracks commit/abort status, and builds
	// the snapshots every read resolves tuple visibility against.
	tm *txn.Manager

	// latches holds one latch per relation: DML statements and Txn write
	// operations take it exclusively, index readers take it shared (the
	// B+trees are not internally synchronized). Heap scans take no table
	// latch at all — MVCC snapshots isolate them. The map itself is
	// guarded by mu (mutated only under Lock, in DDL).
	latches map[catalog.RelID]*sync.RWMutex

	// vacEvery is the per-table dead-version vacuum threshold (≤ 0 =
	// automatic vacuum disabled); see vacuum.go.
	vacEvery int64

	cat     *catalog.Catalog
	mod     *core.Module
	dm      disk.Device
	pool    *buffer.Pool
	planner *plan.Planner

	// stmtTimeoutNs bounds query execution (0 = none); see
	// SetStatementTimeout.
	stmtTimeoutNs atomic.Int64

	// ddlGen counts schema/routine changes; a prepared statement replans
	// when its generation falls behind (its plan may hold dropped heaps
	// or stale bee routines). dataGen counts row modifications; a
	// prepared statement drops its plan's cross-run caches (Materialize,
	// uncorrelated subqueries) when behind. See prepare.go.
	ddlGen  atomic.Uint64
	dataGen atomic.Uint64

	heaps   map[catalog.RelID]*heap.Heap
	indexes map[string]*Index
	byRel   map[catalog.RelID][]*Index

	// access caches the bee module's per-relation deform/form routines so
	// per-tuple paths never take the module lock; it is rebuilt on DDL
	// and on SetRoutines.
	access map[catalog.RelID]*relAccess

	// obs is the observability layer: metrics registry, latency
	// histograms, and the slow-query log (see observe.go).
	obs *observer

	// Durability plane (nil/zero on a non-durable database): the log
	// writer, the log side of the disk device, the recovering guard that
	// fails entry points during replay, and the last recovery's stats.
	// prepTexts feeds the checkpoint manifest's warm-restart list.
	wal        *wal.Writer
	walDev     disk.LogDevice
	durCfg     DurabilityConfig
	recovering atomic.Bool
	recStats   RecoveryStats
	prepMu     sync.Mutex
	prepTexts  map[string]int

	// adv is the adaptive specialization advisor (always constructed,
	// enabled per Config.Advisor or at runtime via the admin plane).
	adv *advisor.Advisor
}

// relAccess is the cached tuple-access pair for one relation.
type relAccess struct {
	deform core.DeformFunc
	form   core.FormFunc
}

// Index is a secondary (or primary) B+tree index.
type Index struct {
	Name string
	Rel  *catalog.Relation
	Cols []int // attribute ordinals forming the key
	Tree *btree.Tree
}

// Open creates an empty database.
func Open(cfg Config) *DB {
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 32768
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	dm := cfg.Disk
	if dm == nil {
		dm = disk.NewManager(cfg.Latency)
	}
	vacEvery := int64(cfg.VacuumEvery)
	if cfg.VacuumEvery == 0 {
		vacEvery = DefaultVacuumEvery
	}
	db := &DB{
		cat:      catalog.New(),
		mod:      core.NewModule(cfg.Routines),
		tm:       txn.NewManager(),
		latches:  make(map[catalog.RelID]*sync.RWMutex),
		vacEvery: vacEvery,
		dm:       dm,
		pool:     buffer.New(dm, cfg.PoolPages),
		heaps:    make(map[catalog.RelID]*heap.Heap),
		indexes:  make(map[string]*Index),
		byRel:    make(map[catalog.RelID][]*Index),
		access:   make(map[catalog.RelID]*relAccess),
		obs:      newObserver(),

		durCfg:    cfg.Durability,
		prepTexts: make(map[string]int),
	}
	db.obs.beeMode.Store(cfg.Routines != core.Stock)
	db.stmtTimeoutNs.Store(int64(cfg.StatementTimeout))
	db.wireDurability(cfg)
	db.registerCollectors()
	db.wireAdvisor(cfg)
	db.planner = &plan.Planner{
		Cat: db.cat,
		Mod: db.mod,
		HeapFor: func(rel *catalog.Relation) (*heap.Heap, error) {
			h, ok := db.heaps[rel.ID]
			if !ok {
				return nil, fmt.Errorf("engine: relation %s has no heap", rel.Name)
			}
			return h, nil
		},
		Workers: cfg.Workers,
		Batch:   !cfg.NoBatch,
		IndexesFor: func(rel *catalog.Relation) []plan.IndexMeta {
			// Called during planning, which always runs under db.mu.
			ixs := db.byRel[rel.ID]
			metas := make([]plan.IndexMeta, len(ixs))
			for i, ix := range ixs {
				metas[i] = plan.IndexMeta{
					Name: ix.Name, Cols: ix.Cols, Tree: ix.Tree,
					Latch: db.latches[rel.ID],
				}
			}
			return metas
		},
	}
	return db
}

// SetWorkers reconfigures the intra-query parallelism degree: n ≤ 1
// makes subsequent plans serial, n > 1 allows Gather nodes with up to n
// partition workers. Running queries are unaffected (the degree is baked
// into a plan when it is built).
func (db *DB) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	db.mu.Lock()
	db.planner.Workers = n
	db.mu.Unlock()
}

// Workers returns the current intra-query parallelism degree.
func (db *DB) Workers() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.planner.Workers
}

// SetBatch toggles the batch-at-a-time executor path for subsequent
// plans; running queries are unaffected (the choice is baked into a plan
// when it is built).
func (db *DB) SetBatch(on bool) {
	db.mu.Lock()
	db.planner.Batch = on
	db.mu.Unlock()
}

// BatchEnabled reports whether new plans use the batch executor path.
func (db *DB) BatchEnabled() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.planner.Batch
}

// Module exposes the bee module (for experiment configuration and stats).
func (db *DB) Module() *core.Module { return db.mod }

// TxnManager exposes the transaction manager (tests, admin plane).
func (db *DB) TxnManager() *txn.Manager { return db.tm }

// Catalog exposes the system catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Disk exposes the page store (for I/O stats and latency control). It is
// a *disk.Manager unless Config.Disk supplied another Device.
func (db *DB) Disk() disk.Device { return db.dm }

// SetStatementTimeout bounds every subsequent query's execution time;
// zero or negative disables the limit. A query past its deadline returns
// context.DeadlineExceeded.
func (db *DB) SetStatementTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	db.stmtTimeoutNs.Store(int64(d))
}

// StatementTimeout returns the current statement timeout (0 = none).
func (db *DB) StatementTimeout() time.Duration {
	return time.Duration(db.stmtTimeoutNs.Load())
}

// Pool exposes the buffer pool (for cold/warm cache control).
func (db *DB) Pool() *buffer.Pool { return db.pool }

// HeapOf returns the heap of a relation (tests and benchmarks).
func (db *DB) HeapOf(name string) (*heap.Heap, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, err := db.cat.Lookup(name)
	if err != nil {
		return nil, err
	}
	return db.heaps[rel.ID], nil
}

// IndexOf returns a named index.
func (db *DB) IndexOf(name string) (*Index, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ix, ok := db.indexes[name]
	return ix, ok
}

// Result is a fully materialized query result.
type Result struct {
	Cols []exec.ColInfo
	Rows []expr.Row
}

// QueryOpts overrides per-call execution settings — the server maps each
// session's SET commands onto these, so sessions tune timeout,
// parallelism, and batching independently over one shared DB. Zero
// values mean "use the database default".
type QueryOpts struct {
	// Timeout bounds this call's execution; 0 falls back to the
	// database-wide statement timeout.
	Timeout time.Duration
	// Workers overrides the intra-query parallelism degree; 0 keeps the
	// database default, 1 forces a serial plan.
	Workers int
	// Batch overrides the batch-at-a-time executor choice; nil keeps the
	// database default.
	Batch *bool
}

// Query parses, plans, and runs a SELECT.
func (db *DB) Query(text string) (*Result, error) {
	res, _, err := db.runSelect(context.Background(), text, nil, false, nil)
	return res, err
}

// QueryContext runs a SELECT under ctx: cancelling ctx (or exceeding its
// deadline, or the statement timeout) stops execution mid-scan —
// including inside parallel Gather workers — and returns ctx.Err().
func (db *DB) QueryContext(ctx context.Context, text string) (*Result, error) {
	res, _, err := db.runSelect(ctx, text, nil, false, nil)
	return res, err
}

// QueryWith runs a SELECT with per-call setting overrides (session-scoped
// settings on the network server).
func (db *DB) QueryWith(ctx context.Context, text string, opts QueryOpts) (*Result, error) {
	res, _, err := db.runSelect(ctx, text, nil, false, &opts)
	return res, err
}

// QueryProfiled runs a SELECT charging abstract instructions to prof.
func (db *DB) QueryProfiled(text string, prof *profile.Counters) (*Result, error) {
	res, _, err := db.runSelect(context.Background(), text, prof, false, nil)
	return res, err
}

// ExplainAnalyzeQuery executes a SELECT with every plan node wrapped in
// an instrumentation decorator and returns the annotated plan outline —
// actual rows, loops, and inclusive wall-clock time per node, with the
// bee-routine markers intact — alongside the materialized result.
func (db *DB) ExplainAnalyzeQuery(text string) (string, *Result, error) {
	return db.ExplainAnalyzeQueryContext(context.Background(), text)
}

// ExplainAnalyzeQueryContext is ExplainAnalyzeQuery under a context; when
// the context carries an active trace, the outline is stamped with the
// trace ID so it can be cross-referenced with the admin plane's /traces.
func (db *DB) ExplainAnalyzeQueryContext(ctx context.Context, text string) (string, *Result, error) {
	res, root, err := db.runSelect(ctx, text, nil, true, nil)
	if err != nil {
		return "", nil, err
	}
	out := plan.ExplainAnalyze(root)
	if at := trace.FromContext(ctx); at != nil {
		out += "trace: " + trace.IDString(at.ID()) + "\n"
	}
	return out, res, nil
}

// runSelect is the single SELECT execution path: parse, plan, optionally
// instrument, execute, observe. Every public query entry point funnels
// here so query-level metrics land in exactly one place.
//
// Execution runs inside a panic-containment boundary. When a plan
// panics, the recovered error quarantines every query bee the plan used
// (the boundary cannot attribute the fault more precisely) and the query
// transparently re-runs once: the replan's CompilePredicate/CompileScalar/
// CompileJoinKeys calls find the bees quarantined and fall back to the
// generic routines — the paper's bee-unavailable path, enforced at
// runtime. The retry happens only when at least one bee was newly
// quarantined, so a second panic cannot loop.
func (db *DB) runSelect(qctx context.Context, text string, prof *profile.Counters, analyze bool, opts *QueryOpts) (*Result, exec.Node, error) {
	if db.recovering.Load() {
		return nil, nil, ErrRecovering
	}
	start := time.Now()
	if qctx == nil {
		qctx = context.Background()
	}
	// at is nil for untraced requests; every trace call below is a
	// nil-receiver no-op then, so the stock path pays one pointer check.
	at := trace.FromContext(qctx)
	d := db.StatementTimeout()
	if opts != nil && opts.Timeout > 0 {
		d = opts.Timeout
	}
	if d > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(qctx, d)
		defer cancel()
	}
	parseSpan := at.Span("parse")
	sel, err := sql.ParseSelect(text)
	parseSpan.End()
	if err != nil {
		return nil, nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	// One MVCC snapshot covers the whole query (all attempts included):
	// registered so vacuum cannot reclaim a version mid-execution,
	// released when the query ends.
	snap := db.tm.Snapshot(txn.None)
	defer snap.Release()

	pl := db.planner
	if opts != nil && (opts.Workers > 0 || opts.Batch != nil) {
		cp := *db.planner
		if opts.Workers > 0 {
			cp.Workers = opts.Workers
		}
		if opts.Batch != nil {
			cp.Batch = *opts.Batch
		}
		pl = &cp
	}

	var planned *plan.Planned
	var root exec.Node
	var rows []expr.Row
	for attempt := 0; ; attempt++ {
		planSpan := at.Span("plan")
		var hits0, writes0 int64
		if at != nil {
			cs := db.mod.Cache().Stats()
			hits0, writes0 = cs.Hits, cs.Writes
		}
		planned, err = pl.PlanSelect(sel)
		if err != nil {
			planSpan.End()
			return nil, nil, err
		}
		if at != nil {
			// Bee compile vs. cache-hit attribution for this plan.
			cs := db.mod.Cache().Stats()
			planSpan.Note("bees compiled=%d cache_hits=%d", cs.Writes-writes0, cs.Hits-hits0)
		}
		planSpan.End()
		root = planned.Root
		// Traced requests get per-node instrumentation even without
		// ANALYZE, so the trace carries a per-exec-node breakdown. Ad-hoc
		// plans are built fresh per request, so this never leaks
		// instrumentation into reused plans.
		if analyze || at != nil {
			root = exec.Instrument(root)
		}
		execSpan := at.Span("exec")
		rows, err = collectSafe(&exec.Ctx{Context: qctx, Expr: expr.Ctx{Prof: prof}, Snap: snap}, root)
		execSpan.End()
		if at != nil {
			foldNodeSpans(execSpan, root)
		}
		var pe *exec.PanicError
		if attempt == 0 && errors.As(err, &pe) && db.quarantinePlanBees(root) > 0 {
			db.obs.quarantineRetries.Inc()
			continue
		}
		break
	}
	db.obs.observeQuery(text, time.Since(start), int64(len(rows)), err, at.ID())
	if err != nil {
		return nil, nil, err
	}
	db.obs.observeParallel(root)
	db.obs.observeBatch(root)
	db.advisorObservePlan(root, sel, time.Since(start))
	if analyze {
		db.obs.foldNodeStats(root)
	}
	return &Result{Cols: planned.Cols, Rows: rows}, root, nil
}

// foldNodeSpans attaches one fixed-duration child span per instrumented
// plan node under the exec span, so a trace shows where execution time
// went node by node.
func foldNodeSpans(execSpan *trace.Span, root exec.Node) {
	exec.WalkNodes(root, func(n exec.Node) {
		switch in := n.(type) {
		case *exec.Instrumented:
			execSpan.ChildAt("exec.node."+exec.NodeTypeName(in.Inner), in.Elapsed,
				fmt.Sprintf("rows=%d loops=%d", in.Rows, in.Loops))
		case *exec.InstrumentedBatch:
			execSpan.ChildAt("exec.node."+exec.NodeTypeName(in.Inner), in.Elapsed,
				fmt.Sprintf("rows=%d batches=%d", in.Rows, in.Batches))
		}
	})
}

// collectSafe is the query-goroutine containment boundary: a panic in
// any serial plan node or bee closure becomes a *exec.PanicError.
// (Worker-goroutine panics are contained inside Gather and arrive here
// as ordinary errors.)
func collectSafe(ctx *exec.Ctx, root exec.Node) (rows []expr.Row, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = exec.NewPanicError(r)
			// A panic that escaped a node's Open unwound before Collect
			// registered its deferred Close, so open scans may still hold
			// buffer pins; Close is idempotent, so closing again after a
			// panic in Next is harmless.
			closeQuiet(ctx, root)
		}
	}()
	return exec.Collect(ctx, root)
}

// closeQuiet closes a plan tree, containing any secondary panic from
// half-initialized nodes.
func closeQuiet(ctx *exec.Ctx, root exec.Node) {
	defer func() { _ = recover() }()
	root.Close(ctx)
}

// quarantinePlanBees pulls every query bee of a panicked plan from
// service and reports how many were newly quarantined.
func (db *DB) quarantinePlanBees(root exec.Node) int {
	n := 0
	exec.WalkBees(root, func(b exec.BeeRef) {
		if db.mod.Quarantine(b.Kind, b.Name) {
			n++
		}
	})
	return n
}

// ExplainQuery plans a SELECT and renders the plan outline, marking the
// installed bee routines.
func (db *DB) ExplainQuery(text string) (string, error) {
	planned, err := db.PlanQuery(text)
	if err != nil {
		return "", err
	}
	return plan.Explain(planned.Root), nil
}

// PlanQuery plans a SELECT without running it (used by tools and tests).
func (db *DB) PlanQuery(text string) (*plan.Planned, error) {
	sel, err := sql.ParseSelect(text)
	if err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.planner.PlanSelect(sel)
}

// Exec parses and executes a DDL or DML statement, returning the number
// of affected rows (0 for DDL).
func (db *DB) Exec(text string) (int64, error) {
	return db.ExecProfiled(text, nil)
}

// ExecContext is Exec under a context: a trace carried by ctx gets
// parse/exec/commit spans for the statement.
func (db *DB) ExecContext(ctx context.Context, text string) (int64, error) {
	return db.execCtx(ctx, text, nil)
}

// ExecProfiled is Exec with instruction accounting.
func (db *DB) ExecProfiled(text string, prof *profile.Counters) (int64, error) {
	return db.execCtx(context.Background(), text, prof)
}

// execCtx is the single funnel for statement-level metrics, mirroring
// runSelect for the DML/DDL path.
func (db *DB) execCtx(ctx context.Context, text string, prof *profile.Counters) (int64, error) {
	if db.recovering.Load() {
		return 0, ErrRecovering
	}
	start := time.Now()
	at := trace.FromContext(ctx)
	n, err := db.execStmtSafe(at, text, prof)
	// The statement auto-commits: its effects are applied and visible the
	// moment execution returns. The commit span covers the finalize work
	// (statement metrics, slow-log admission).
	commitSpan := at.Span("commit")
	db.obs.observeStmt(text, time.Since(start), n, err, at.ID())
	commitSpan.End()
	return n, err
}

// execStmtSafe is the DML/DDL containment boundary: a panic anywhere in
// statement execution surfaces as a *exec.PanicError instead of taking
// the process down. (DML bees — SCL — are not quarantined: specialized
// storage has no generic form/deform fallback.)
func (db *DB) execStmtSafe(at *trace.Active, text string, prof *profile.Counters) (n int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = exec.NewPanicError(r)
		}
	}()
	return db.execStmt(at, text, prof)
}

func (db *DB) execStmt(at *trace.Active, text string, prof *profile.Counters) (int64, error) {
	parseSpan := at.Span("parse")
	stmt, err := sql.Parse(text)
	parseSpan.End()
	if err != nil {
		return 0, err
	}
	execSpan := at.Span("exec")
	defer execSpan.End()
	switch s := stmt.(type) {
	case *sql.CreateTable:
		return 0, db.createTable(s)
	case *sql.CreateIndex:
		return 0, db.createIndex(s)
	case *sql.DropTable:
		return 0, db.dropTable(s.Name)
	case *sql.Insert:
		return db.execInsert(s, prof, nil)
	case *sql.Update:
		return db.execUpdate(s, prof, nil)
	case *sql.Delete:
		return db.execDelete(s, prof, nil)
	case *sql.Select:
		return 0, fmt.Errorf("engine: use Query for SELECT")
	default:
		return 0, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// --- DDL ---

func (db *DB) createTable(s *sql.CreateTable) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	schema := catalog.Schema{Attrs: make([]catalog.Attribute, len(s.Cols))}
	for i, c := range s.Cols {
		schema.Attrs[i] = catalog.Attribute{
			Name: c.Name, Type: c.Type, NotNull: c.NotNull, LowCard: c.LowCard,
		}
	}
	var pkey []int
	for _, name := range s.PKey {
		idx := -1
		for i, c := range s.Cols {
			if c.Name == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("engine: primary key column %q not in table", name)
		}
		pkey = append(pkey, idx)
	}
	// Relation-bee creation happens at schema-definition time: compute
	// the tuple-bee storage mask, catalog the relation, create its heap,
	// and ask the bee module to build its relation bee.
	spec := db.mod.SpecMaskFor(schema)
	rel, err := db.cat.CreateRelation(s.Name, schema, pkey, spec)
	if err != nil {
		return err
	}
	h := heap.Create(db.dm, db.pool, rel, db.tm)
	h.SetWAL(db.wal)
	db.heaps[rel.ID] = h
	db.latches[rel.ID] = &sync.RWMutex{}
	db.mod.OnCreateRelation(rel)
	db.wireBeeJournal(rel, h.File())
	if err := db.refreshAccessLocked(rel); err != nil {
		return err
	}
	if len(pkey) > 0 {
		tree := btree.New(s.Name+"_pkey", true)
		db.installIDX(tree, rel, pkey)
		db.addIndexLocked(&Index{
			Name: s.Name + "_pkey", Rel: rel, Cols: pkey,
			Tree: tree,
		})
	}
	db.ddlGen.Add(1)
	// DDL is not logged record-by-record; the checkpoint that follows it
	// carries the new schema in its manifest (a no-op when WAL is off).
	return db.checkpointLocked()
}

// installIDX asks the bee module for a specialized key comparator (the
// IDX bee) and installs it on the tree.
func (db *DB) installIDX(tree *btree.Tree, rel *catalog.Relation, cols []int) {
	keyTypes := make([]types.T, len(cols))
	for i, c := range cols {
		keyTypes[i] = rel.Attrs[c].Type
	}
	if cmp, ok := db.mod.CompileIndexCmp(keyTypes); ok {
		tree.SetComparator(func(a, b btree.Key) int { return cmp(a, b) })
	}
}

func (db *DB) createIndex(s *sql.CreateIndex) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.indexes[s.Name]; ok {
		return fmt.Errorf("engine: index %q already exists", s.Name)
	}
	rel, err := db.cat.Lookup(s.Table)
	if err != nil {
		return err
	}
	var cols []int
	for _, name := range s.Cols {
		i := rel.AttrIndex(name)
		if i < 0 {
			return fmt.Errorf("engine: column %q not in %s", name, s.Table)
		}
		cols = append(cols, i)
	}
	ix := &Index{Name: s.Name, Rel: rel, Cols: cols, Tree: btree.New(s.Name, s.Unique)}
	db.installIDX(ix.Tree, rel, cols)
	// Backfill from the heap.
	h := db.heaps[rel.ID]
	acc, err := db.accessFor(rel)
	if err != nil {
		return err
	}
	deform := acc.deform
	// The backfill scan runs with a nil snapshot — latest committed —
	// which is sound here because createIndex holds db.mu exclusively, so
	// no transaction is in flight. Versions deleted-and-committed get no
	// entry: no snapshot that could see them can exist either.
	values := make([]types.Datum, len(rel.Attrs))
	sc := h.Scan(nil, nil)
	defer sc.Close()
	for {
		tid, tup, ok := sc.Next()
		if !ok {
			break
		}
		deform(tup, values, len(values), nil)
		if err := ix.Tree.Insert(indexKey(values, cols), tid, nil); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	db.addIndexLocked(ix)
	db.ddlGen.Add(1)
	return db.checkpointLocked()
}

func (db *DB) addIndexLocked(ix *Index) {
	db.indexes[ix.Name] = ix
	db.byRel[ix.Rel.ID] = append(db.byRel[ix.Rel.ID], ix)
}

func (db *DB) dropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	rel, err := db.cat.DropRelation(name)
	if err != nil {
		return err
	}
	if h := db.heaps[rel.ID]; h != nil {
		// Dropped frames must leave the pool before the file goes away, or
		// a later eviction/checkpoint would write back to a missing file.
		if err := db.pool.InvalidateFile(h.File()); err != nil {
			return err
		}
		h.Drop()
		delete(db.heaps, rel.ID)
	}
	for _, ix := range db.byRel[rel.ID] {
		delete(db.indexes, ix.Name)
	}
	delete(db.byRel, rel.ID)
	delete(db.access, rel.ID)
	delete(db.latches, rel.ID)
	// The Bee Collector reclaims the relation's bees.
	db.mod.OnDropRelation(rel)
	// The advisor demotes this table's promoted bees next cycle: their
	// guard assumption (the relation they were specialized against) is
	// gone.
	db.advisorNoteDDL(name)
	db.ddlGen.Add(1)
	return db.checkpointLocked()
}

// refreshAccessLocked recomputes the cached routines for one relation.
func (db *DB) refreshAccessLocked(rel *catalog.Relation) error {
	deform, err := db.mod.Deformer(rel)
	if err != nil {
		return err
	}
	db.access[rel.ID] = &relAccess{deform: deform, form: db.mod.Former(rel)}
	return nil
}

// SetRoutines reconfigures the bee module's routine set and refreshes the
// cached per-relation access routines.
func (db *DB) SetRoutines(rs core.RoutineSet) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.mod.SetRoutines(rs); err != nil {
		return err
	}
	for _, rel := range db.cat.Relations() {
		if err := db.refreshAccessLocked(rel); err != nil {
			return err
		}
	}
	db.obs.beeMode.Store(rs != core.Stock)
	db.ddlGen.Add(1)
	return nil
}

// accessFor returns the cached routines for a relation.
func (db *DB) accessFor(rel *catalog.Relation) (*relAccess, error) {
	a, ok := db.access[rel.ID]
	if !ok {
		return nil, fmt.Errorf("engine: relation %s has no cached access routines", rel.Name)
	}
	return a, nil
}

func indexKey(values []types.Datum, cols []int) btree.Key {
	key := make(btree.Key, len(cols))
	for i, c := range cols {
		key[i] = values[c]
	}
	return key
}

// --- Cache control (warm/cold experiments) ---

// DropCaches flushes and empties the buffer pool (cold-cache reset).
func (db *DB) DropCaches() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.pool.DropCache()
}

// WarmUp touches every page of every relation so a warm-cache run sees
// no disk reads.
func (db *DB) WarmUp() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, h := range db.heaps {
		sc := h.Scan(nil, nil)
		for {
			if _, _, ok := sc.Next(); !ok {
				break
			}
		}
		sc.Close()
		if err := sc.Err(); err != nil {
			return err
		}
	}
	return nil
}

// SimIOTime returns the accumulated simulated I/O time.
func (db *DB) SimIOTime() time.Duration {
	_, _, sim := db.dm.Stats()
	return sim
}

// TotalPages reports the page count of every user relation — the storage
// footprint tuple bees shrink (experiment E9).
func (db *DB) TotalPages() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	total := 0
	for _, h := range db.heaps {
		total += h.NumPages()
	}
	return total
}
