package engine

import (
	"errors"
	"fmt"
	"testing"

	"microspec/internal/core"
	"microspec/internal/storage/disk"
	"microspec/internal/types"
)

// durableDB opens a WAL-enabled database over an explicit disk.Manager so
// tests can crash it (dm.Crash) and hand the survivor image to Recover.
func durableDB(t testing.TB, naive bool) (*DB, *disk.Manager) {
	t.Helper()
	dm := disk.NewManager(disk.LatencyModel{})
	db := Open(Config{
		Routines:   core.AllRoutines,
		PoolPages:  256,
		Disk:       dm,
		Durability: DurabilityConfig{WAL: true, NaiveSync: naive},
	})
	return db, dm
}

// crashRecover kills db, builds the survivor image with tearBytes of
// unsynced tail carried over, and recovers a new instance from it.
func crashRecover(t testing.TB, db *DB, dm *disk.Manager, tearBytes int) *DB {
	t.Helper()
	db.SimulateCrash()
	img := dm.Crash(tearBytes)
	rdb, err := Recover(Config{
		Routines:  core.AllRoutines,
		PoolPages: 256,
		Disk:      img,
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return rdb
}

func intResult(t testing.TB, db *DB, q string) int64 {
	t.Helper()
	r := mustQuery(t, db, q)
	if len(r.Rows) != 1 {
		t.Fatalf("Query(%q): %d rows, want 1", q, len(r.Rows))
	}
	return r.Rows[0][0].Int64()
}

func TestRecoverCommittedWork(t *testing.T) {
	for _, naive := range []bool{false, true} {
		t.Run(fmt.Sprintf("naive=%v", naive), func(t *testing.T) {
			db, dm := durableDB(t, naive)
			mustExec(t, db,
				`create table kv (k integer not null, v varchar(20) not null, primary key (k))`)
			for i := 1; i <= 50; i++ {
				mustExec(t, db, fmt.Sprintf("insert into kv values (%d, 'v-%d')", i, i))
			}
			mustExec(t, db,
				"update kv set v = 'patched' where k = 7",
				"delete from kv where k >= 41",
			)

			rdb := crashRecover(t, db, dm, 0)
			if n := intResult(t, rdb, "select count(*) from kv"); n != 40 {
				t.Fatalf("recovered %d rows, want 40", n)
			}
			r := mustQuery(t, rdb, "select v from kv where k = 7")
			if len(r.Rows) != 1 || r.Rows[0][0].Str() != "patched" {
				t.Fatalf("updated row after recovery: %v", r.Rows)
			}
			if r := mustQuery(t, rdb, "select k from kv where k = 41"); len(r.Rows) != 0 {
				t.Fatal("deleted row resurrected by recovery")
			}
			// Recovered instance accepts new durable work.
			mustExec(t, rdb, "insert into kv values (100, 'after')")
			if n := intResult(t, rdb, "select count(*) from kv"); n != 41 {
				t.Fatalf("post-recovery insert: count %d, want 41", n)
			}
		})
	}
}

func TestRecoverDiscardsUnackedCommit(t *testing.T) {
	db, dm := durableDB(t, false)
	mustExec(t, db,
		`create table kv (k integer not null, primary key (k))`,
		"insert into kv values (1)",
	)
	// Arm the mid-commit kill point: the next commit appends its records
	// but dies before the sync, so the client sees an error, not an ack.
	db.WALWriter().CrashBeforeNextSync()
	if _, err := db.Exec("insert into kv values (2)"); err == nil {
		t.Fatal("insert acked despite writer crash before sync")
	}

	rdb := crashRecover(t, db, dm, 0)
	if n := intResult(t, rdb, "select count(*) from kv"); n != 1 {
		t.Fatalf("recovered %d rows, want 1 (unacked commit must not survive)", n)
	}
}

func TestRecoverTornTail(t *testing.T) {
	db, dm := durableDB(t, false)
	mustExec(t, db,
		`create table kv (k integer not null, primary key (k))`,
		"insert into kv values (1)",
	)
	db.WALWriter().CrashBeforeNextSync()
	_, _ = db.Exec("insert into kv values (2)") // records appended, never synced

	// Carry 5 bytes of the unsynced tail into the survivor image: a torn
	// record recovery must detect and discard.
	rdb := crashRecover(t, db, dm, 5)
	st := rdb.RecoveryStats()
	if st.TornBytes != 5 {
		t.Fatalf("TornBytes = %d, want 5", st.TornBytes)
	}
	if n := intResult(t, rdb, "select count(*) from kv"); n != 1 {
		t.Fatalf("recovered %d rows, want 1", n)
	}
	// The end-of-recovery checkpoint truncated the damage: a second
	// crash-recover replays cleanly from the fresh checkpoint.
	dm2, ok := rdb.Disk().(*disk.Manager)
	if !ok {
		t.Fatal("recovered DB not on a disk.Manager")
	}
	rdb2 := crashRecover(t, rdb, dm2, 0)
	if st := rdb2.RecoveryStats(); st.TornBytes != 0 {
		t.Fatalf("second recovery saw %d torn bytes, want 0", st.TornBytes)
	}
	if n := intResult(t, rdb2, "select count(*) from kv"); n != 1 {
		t.Fatalf("second recovery: %d rows, want 1", n)
	}
}

func TestRecoverInteractiveTxns(t *testing.T) {
	db, dm := durableDB(t, false)
	mustExec(t, db, `create table kv (k integer not null, primary key (k))`)

	a := db.Begin(nil)
	if err := a.Insert("kv", []types.Datum{types.NewInt64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	b := db.Begin(nil)
	if err := b.Insert("kv", []types.Datum{types.NewInt64(2)}); err != nil {
		t.Fatal(err)
	}
	if err := b.Rollback(); err != nil {
		t.Fatal(err)
	}

	rdb := crashRecover(t, db, dm, 0)
	if n := intResult(t, rdb, "select count(*) from kv"); n != 1 {
		t.Fatalf("recovered %d rows, want 1 (committed txn only)", n)
	}
	if n := intResult(t, rdb, "select k from kv"); n != 1 {
		t.Fatalf("recovered k = %d, want 1", n)
	}
}

func TestRecoverRebuildsIndexes(t *testing.T) {
	db, dm := durableDB(t, false)
	mustExec(t, db,
		`create table kv (k integer not null, v integer not null, primary key (k))`,
		`create index kv_v on kv (v)`,
	)
	for i := 1; i <= 30; i++ {
		mustExec(t, db, fmt.Sprintf("insert into kv values (%d, %d)", i, i*10))
	}

	rdb := crashRecover(t, db, dm, 0)
	if st := rdb.RecoveryStats(); st.Indexes != 2 { // pkey + kv_v
		t.Fatalf("rebuilt %d indexes, want 2", st.Indexes)
	}
	ix, ok := rdb.IndexOf("kv_v")
	if !ok {
		t.Fatal("index kv_v missing after recovery")
	}
	if n := ix.Tree.Len(); n != 30 {
		t.Fatalf("rebuilt index holds %d keys, want 30", n)
	}
	if n := intResult(t, rdb, "select k from kv where v = 170"); n != 17 {
		t.Fatalf("index lookup after recovery: k = %d, want 17", n)
	}
}

func TestRecoverAnchorsOnLastCheckpoint(t *testing.T) {
	db, dm := durableDB(t, false)
	mustExec(t, db, `create table kv (k integer not null, primary key (k))`)
	mustExec(t, db, "insert into kv values (1)")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "insert into kv values (2)")
	// A checkpoint that dies between appending its record and syncing it:
	// recovery must fall back to the previous durable checkpoint and still
	// replay the committed insert after it.
	db.WALWriter().CrashBeforeNextSync()
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded despite armed crash")
	}

	rdb := crashRecover(t, db, dm, 0)
	if n := intResult(t, rdb, "select count(*) from kv"); n != 2 {
		t.Fatalf("recovered %d rows, want 2", n)
	}
}

func TestRecoverWarmsPreparedStatements(t *testing.T) {
	db, dm := durableDB(t, false)
	mustExec(t, db, `create table kv (k integer not null, v integer not null, primary key (k))`)
	mustExec(t, db, "insert into kv values (1, 10)")
	texts := []string{
		"select v from kv where k = $1",
		"select count(*) from kv where v > $1",
	}
	for _, text := range texts {
		s, err := db.Prepare(text)
		if err != nil {
			t.Fatal(err)
		}
		s.Close() // texts are remembered even after close
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	rdb := crashRecover(t, db, dm, 0)
	if st := rdb.RecoveryStats(); st.PreparedWarm != len(texts) {
		t.Fatalf("PreparedWarm = %d, want %d", st.PreparedWarm, len(texts))
	}

	// Cold-restart baseline: NoManifestReplay skips the warm-up.
	db2, dm2 := durableDB(t, false)
	mustExec(t, db2, `create table kv (k integer not null, primary key (k))`)
	if _, err := db2.Prepare("select k from kv where k = $1"); err != nil {
		t.Fatal(err)
	}
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db2.SimulateCrash()
	cold, err := Recover(Config{
		Routines:   core.AllRoutines,
		PoolPages:  256,
		Disk:       dm2.Crash(0),
		Durability: DurabilityConfig{NoManifestReplay: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.RecoveryStats(); st.PreparedWarm != 0 {
		t.Fatalf("cold restart warmed %d statements, want 0", st.PreparedWarm)
	}
}

func TestRecoverDeferredRejectsClients(t *testing.T) {
	db, dm := durableDB(t, false)
	mustExec(t, db, `create table kv (k integer not null, primary key (k))`)
	mustExec(t, db, "insert into kv values (1)")
	db.SimulateCrash()

	rdb, finish := RecoverDeferred(Config{
		Routines:  core.AllRoutines,
		PoolPages: 256,
		Disk:      dm.Crash(0),
	})
	if !rdb.Recovering() {
		t.Fatal("deferred recovery: Recovering() = false before finish")
	}
	if _, err := rdb.Query("select 1"); !errors.Is(err, ErrRecovering) {
		t.Fatalf("Query during recovery: %v, want ErrRecovering", err)
	}
	if _, err := rdb.Exec("insert into kv values (2)"); !errors.Is(err, ErrRecovering) {
		t.Fatalf("Exec during recovery: %v, want ErrRecovering", err)
	}
	if _, err := rdb.Prepare("select k from kv"); !errors.Is(err, ErrRecovering) {
		t.Fatalf("Prepare during recovery: %v, want ErrRecovering", err)
	}
	if _, err := rdb.BulkLoad("kv", nil, func() ([]types.Datum, bool) { return nil, false }); !errors.Is(err, ErrRecovering) {
		t.Fatalf("BulkLoad during recovery: %v, want ErrRecovering", err)
	}
	if err := rdb.Checkpoint(); !errors.Is(err, ErrRecovering) {
		t.Fatalf("Checkpoint during recovery: %v, want ErrRecovering", err)
	}

	if err := finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if rdb.Recovering() {
		t.Fatal("Recovering() = true after finish")
	}
	if n := intResult(t, rdb, "select count(*) from kv"); n != 1 {
		t.Fatalf("recovered %d rows, want 1", n)
	}
}

func TestCleanShutdownReplaysNothing(t *testing.T) {
	db, dm := durableDB(t, false)
	mustExec(t, db, `create table kv (k integer not null, primary key (k))`)
	for i := 1; i <= 20; i++ {
		mustExec(t, db, fmt.Sprintf("insert into kv values (%d)", i))
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rdb, err := Recover(Config{
		Routines:  core.AllRoutines,
		PoolPages: 256,
		Disk:      dm.Crash(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rdb.RecoveryStats()
	if st.RedoInserts != 0 || st.RedoDeletes != 0 || st.Discarded != 0 {
		t.Fatalf("clean shutdown replayed work: %+v", st)
	}
	if !st.HadCheckpoint {
		t.Fatal("clean shutdown left no checkpoint")
	}
	if n := intResult(t, rdb, "select count(*) from kv"); n != 20 {
		t.Fatalf("recovered %d rows, want 20", n)
	}
}

func TestBulkLoadDurable(t *testing.T) {
	db, dm := durableDB(t, false)
	mustExec(t, db, `create table kv (k integer not null, v double not null, primary key (k))`)
	i := 0
	n, err := db.BulkLoad("kv", nil, func() ([]types.Datum, bool) {
		if i >= 500 {
			return nil, false
		}
		i++
		return []types.Datum{types.NewInt64(int64(i)), types.NewFloat64(float64(i) / 2)}, true
	})
	if err != nil || n != 500 {
		t.Fatalf("BulkLoad: n=%d err=%v", n, err)
	}

	rdb := crashRecover(t, db, dm, 0)
	if got := intResult(t, rdb, "select count(*) from kv"); got != 500 {
		t.Fatalf("recovered %d bulk-loaded rows, want 500", got)
	}
	st := rdb.RecoveryStats()
	if st.RedoInserts != 0 {
		t.Fatalf("bulk load should be durable via checkpoint, not redo (RedoInserts=%d)", st.RedoInserts)
	}
}

func TestGroupCommitFewerFsyncsThanNaive(t *testing.T) {
	// Sequential single-session commits can't batch, so compare the
	// counters' plumbing here; the concurrency win is measured by the
	// loadgen benchmark (EXPERIMENTS.md E16) and the writer's own test.
	db, dm := durableDB(t, true)
	mustExec(t, db, `create table kv (k integer not null, primary key (k))`)
	_, syncs0 := dm.LogStats()
	for i := 1; i <= 10; i++ {
		mustExec(t, db, fmt.Sprintf("insert into kv values (%d)", i))
	}
	_, syncs1 := dm.LogStats()
	if got := syncs1 - syncs0; got < 10 {
		t.Fatalf("naive mode issued %d syncs for 10 commits, want >= 10", got)
	}
	snap := db.MetricsSnapshot()
	if c, ok := snap.Counters["wal.commits"]; !ok || c < 10 {
		t.Fatalf("wal.commits = %d (ok=%v), want >= 10", c, ok)
	}
	if _, ok := snap.Counters["wal.fsyncs"]; !ok {
		t.Fatal("wal.fsyncs missing from snapshot")
	}
	if _, ok := snap.Counters["group_commit.sync_batches"]; !ok {
		t.Fatal("group_commit.sync_batches missing from snapshot")
	}
}

// TestRecoverTupleBeeDictionary covers the part of recovery page images
// cannot carry: tuple-bee specialized storage elides the low-cardinality
// attribute values from stored tuples, keeping only a beeID that indexes
// the relation's in-memory combo dictionary. The checkpoint manifest
// persists the dictionary and bee-combo log records cover bees created
// after it, so replay must reassign identical beeIDs for combos from both
// sources — and keep assigning consistently for inserts after recovery.
func TestRecoverTupleBeeDictionary(t *testing.T) {
	db, dm := durableDB(t, false)
	mustExec(t, db, `create table orders (
		id integer not null,
		status char(1) not null lowcard,
		region char(4) not null lowcard,
		primary key (id))`)
	regions := []string{"ASIA", "EMEA", "AMER"}
	// First wave: combos land in the checkpoint manifest.
	for i := 0; i < 30; i++ {
		mustExec(t, db, fmt.Sprintf("insert into orders values (%d, '%c', '%s')",
			i, 'A'+i%2, regions[i%2]))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Second wave: new combos exist only as bee-combo log records.
	for i := 30; i < 60; i++ {
		mustExec(t, db, fmt.Sprintf("insert into orders values (%d, '%c', '%s')",
			i, 'A'+i%3, regions[i%3]))
	}

	db.SimulateCrash()
	img := dm.Crash(0)
	rdb, err := Recover(Config{Routines: core.AllRoutines, PoolPages: 256, Disk: img})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := intResult(t, rdb, "select count(*) from orders"); got != 60 {
		t.Fatalf("recovered %d rows, want 60", got)
	}
	// Deforming recovered tuples reads the replayed dictionary: the
	// per-combo counts only come out right if every beeID resolves to the
	// values the crashed instance assigned it.
	if got := intResult(t, rdb, "select count(*) from orders where status = 'C'"); got != 10 {
		t.Fatalf("status C count = %d, want 10", got)
	}
	if got := intResult(t, rdb, "select count(*) from orders where region = 'ASIA'"); got != 25 {
		t.Fatalf("region ASIA count = %d, want 25", got)
	}
	// Post-recovery inserts: an existing combo must reuse its bee, a new
	// combo must get a fresh one, and both must survive a second crash.
	mustExec(t, rdb, "insert into orders values (100, 'A', 'ASIA')")
	mustExec(t, rdb, "insert into orders values (101, 'Z', 'ZZZZ')")
	rdb2 := crashRecover(t, rdb, img, 0)
	if got := intResult(t, rdb2, "select count(*) from orders where region = 'ASIA'"); got != 26 {
		t.Fatalf("after second recovery, region ASIA count = %d, want 26", got)
	}
	if got := intResult(t, rdb2, "select count(*) from orders where status = 'Z'"); got != 1 {
		t.Fatalf("after second recovery, status Z count = %d, want 1", got)
	}
	if rs := rdb2.RecoveryStats(); rs.ReplayedBees == 0 {
		t.Fatal("second recovery replayed no tuple bees")
	}
}
