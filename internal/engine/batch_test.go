// Batch-execution tests: the batch-at-a-time path (on by default) must
// return exactly what the tuple-at-a-time path returns for all 22 TPC-H
// queries, serial and parallel; batch plans must surface in EXPLAIN and
// the metrics registry; and batch scans must be race-free against
// concurrent DML (run with -race).
package engine_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"microspec/internal/tpch"
)

// TestBatchMatchesTupleTPCH runs all 22 TPC-H queries with the batch path
// disabled and enabled, at workers=1 and workers=4, and requires identical
// results — including row order, which batchify preserves by visiting
// rows in heap page/slot order exactly like the tuple path.
func TestBatchMatchesTupleTPCH(t *testing.T) {
	db := analyzeDB(t)
	defer db.SetWorkers(2) // restore the golden-test degree
	defer db.SetBatch(true)
	for _, workers := range []int{1, 4} {
		db.SetWorkers(workers)
		for q := 1; q <= 22; q++ {
			sql := tpch.Queries()[q]
			db.SetBatch(false)
			tuple, err := db.Query(sql)
			if err != nil {
				t.Fatalf("Q%d workers=%d tuple: %v", q, workers, err)
			}
			db.SetBatch(true)
			batch, err := db.Query(sql)
			if err != nil {
				t.Fatalf("Q%d workers=%d batch: %v", q, workers, err)
			}
			assertSameResult(t, fmt.Sprintf("Q%d workers=%d", q, workers), tuple, batch)
		}
	}
}

// TestBatchPlanShapes pins that the planner actually chooses the batch
// path by default and renders it: a serial scan→filter→agg spine becomes
// BatchHashAgg over a BatchSeqScan with the filter fused into the scan
// (the composed [GCL+EVP] routine), spines feeding joins sit behind
// Rebatch adapters, and disabling batching restores the tuple operators.
func TestBatchPlanShapes(t *testing.T) {
	db := analyzeDB(t)
	defer db.SetWorkers(2)
	defer db.SetBatch(true)

	db.SetWorkers(1)
	out, err := db.ExplainQuery(tpch.Queries()[6])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BatchHashAgg", "BatchSeqScan lineitem", "batch=1024", "filter=", "[GCL+EVP]"} {
		if !strings.Contains(out, want) {
			t.Errorf("serial Q6 explain missing %q:\n%s", want, out)
		}
	}

	out, err = db.ExplainQuery(tpch.Queries()[3])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Rebatch") || !strings.Contains(out, "HashJoin") {
		t.Errorf("Q3 explain missing Rebatch adapters under joins:\n%s", out)
	}

	db.SetBatch(false)
	out, err = db.ExplainQuery(tpch.Queries()[6])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Batch") || strings.Contains(out, "Rebatch") {
		t.Errorf("batch-disabled plan still contains batch nodes:\n%s", out)
	}
}

// TestBatchMetrics asserts the batch-execution counters accumulate: every
// batch-path query bumps batch_queries and moves page-sized batches.
func TestBatchMetrics(t *testing.T) {
	db := parallelDB(t)
	db.ResetMetrics()
	if _, err := db.Query("select count(*) from wide where w_val < 2000"); err != nil {
		t.Fatal(err)
	}
	snap := db.MetricsSnapshot()
	if snap.Counters["batch_queries"] != 1 {
		t.Fatalf("batch_queries = %d, want 1", snap.Counters["batch_queries"])
	}
	if snap.Counters["batch.batches"] == 0 || snap.Counters["batch.rows"] < 5000 {
		t.Fatalf("batch flow counters: batches=%d rows=%d, want >0 and ≥5000",
			snap.Counters["batch.batches"], snap.Counters["batch.rows"])
	}

	// A batch-disabled query must not count.
	db.SetBatch(false)
	defer db.SetBatch(true)
	if _, err := db.Query("select count(*) from wide where w_val < 2000"); err != nil {
		t.Fatal(err)
	}
	if got := db.MetricsSnapshot().Counters["batch_queries"]; got != 1 {
		t.Fatalf("tuple-path query bumped batch_queries to %d", got)
	}
}

// TestBatchScanWithConcurrentDML drives batch aggregations over "wide"
// while other goroutines insert into and delete from "scratch" — the
// -race validation that the batch path (page-wise scanner, reusable
// arenas, selection vectors) shares no mutable state with the DML path.
func TestBatchScanWithConcurrentDML(t *testing.T) {
	db := parallelDB(t)
	want, err := db.Query("select w_grp, count(*), sum(w_val) from wide group by w_grp")
	if err != nil {
		t.Fatal(err)
	}

	const readers, writers, iters = 4, 2, 15
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				got, err := db.Query("select w_grp, count(*), sum(w_val) from wide group by w_grp")
				if err != nil {
					t.Error(err)
					return
				}
				assertSameResult(t, "concurrent batch scan", want, got)
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := 10000 + w*iters + i
				if _, err := db.Exec(fmt.Sprintf(
					"insert into scratch values (%d, 'batch-%d')", id, id)); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if _, err := db.Exec(fmt.Sprintf(
						"delete from scratch where s_id = %d", id)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
