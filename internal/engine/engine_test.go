package engine

import (
	"fmt"
	"testing"

	"microspec/internal/core"
	"microspec/internal/profile"
	"microspec/internal/storage/heap"
	"microspec/internal/types"
)

func newDB(t testing.TB, rs core.RoutineSet) *DB {
	t.Helper()
	return Open(Config{Routines: rs, PoolPages: 1024})
}

func mustExec(t testing.TB, db *DB, stmts ...string) {
	t.Helper()
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("Exec(%q): %v", s, err)
		}
	}
}

func mustQuery(t testing.TB, db *DB, q string) *Result {
	t.Helper()
	r, err := db.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return r
}

// setupMini creates a small two-table schema in both stock and bee DBs.
func setupMini(t testing.TB, rs core.RoutineSet) *DB {
	db := newDB(t, rs)
	mustExec(t, db,
		`create table dept (
			d_id integer not null,
			d_name varchar(20) not null,
			d_region char(4) not null lowcard,
			primary key (d_id))`,
		`create table emp (
			e_id integer not null,
			e_dept integer not null,
			e_name varchar(20) not null,
			e_salary double not null,
			e_hired date not null,
			primary key (e_id))`,
	)
	for d := 1; d <= 4; d++ {
		mustExec(t, db, fmt.Sprintf(
			"insert into dept values (%d, 'dept-%d', 'R%d')", d, d, d%2))
	}
	for e := 1; e <= 100; e++ {
		mustExec(t, db, fmt.Sprintf(
			"insert into emp values (%d, %d, 'emp-%d', %d.50, date '%d-01-15')",
			e, e%4+1, e, 1000+e*10, 1990+e%10))
	}
	return db
}

func TestBasicInsertSelect(t *testing.T) {
	for _, rs := range []core.RoutineSet{core.Stock, core.AllRoutines} {
		db := setupMini(t, rs)
		r := mustQuery(t, db, "select e_id, e_name, e_salary from emp where e_id = 42")
		if len(r.Rows) != 1 {
			t.Fatalf("rows = %d", len(r.Rows))
		}
		if r.Rows[0][0].Int64() != 42 || r.Rows[0][1].Str() != "emp-42" || r.Rows[0][2].Float64() != 1420.50 {
			t.Errorf("row = %v", r.Rows[0])
		}
		if r.Cols[1].Name != "e_name" {
			t.Errorf("cols = %v", r.Cols)
		}
	}
}

func TestStockAndBeeAgree(t *testing.T) {
	stock := setupMini(t, core.Stock)
	bee := setupMini(t, core.AllRoutines)
	queries := []string{
		"select count(*) from emp",
		"select d_region, count(*), sum(e_salary) from emp, dept where e_dept = d_id group by d_region order by d_region",
		"select e_name from emp where e_salary > 1500 and e_hired >= date '1995-01-01' order by e_id limit 5",
		"select d_name, avg(e_salary) from dept, emp where d_id = e_dept group by d_name order by d_name",
		"select count(*) from emp where e_name like 'emp-1%'",
	}
	for _, q := range queries {
		rs := mustQuery(t, stock, q)
		rb := mustQuery(t, bee, q)
		if len(rs.Rows) != len(rb.Rows) {
			t.Fatalf("%q: stock %d rows, bee %d rows", q, len(rs.Rows), len(rb.Rows))
		}
		for i := range rs.Rows {
			for j := range rs.Rows[i] {
				a, b := rs.Rows[i][j], rb.Rows[i][j]
				if a.IsNull() != b.IsNull() || (!a.IsNull() && a.Compare(b) != 0) {
					t.Errorf("%q row %d col %d: stock %v, bee %v", q, i, j, a, b)
				}
			}
		}
	}
}

func TestWhereStar(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	r := mustQuery(t, db, "select * from dept where d_id = 2")
	if len(r.Rows) != 1 || len(r.Rows[0]) != 3 {
		t.Fatalf("star select: %v", r.Rows)
	}
	if r.Rows[0][1].Str() != "dept-2" {
		t.Errorf("row = %v", r.Rows[0])
	}
}

func TestJoinExplicitLeft(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	mustExec(t, db, "insert into dept values (99, 'empty', 'R1')")
	r := mustQuery(t, db, `
		select d_id, count(e_id)
		from dept left outer join emp on d_id = e_dept
		group by d_id
		order by d_id`)
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	last := r.Rows[4]
	if last[0].Int32() != 99 || last[1].Int64() != 0 {
		t.Errorf("empty dept row = %v (count over null must be 0)", last)
	}
}

func TestScalarSubqueryAndExists(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	r := mustQuery(t, db,
		"select count(*) from emp where e_salary > (select avg(e_salary) from emp)")
	if got := r.Rows[0][0].Int64(); got != 50 {
		t.Errorf("above-average count = %d, want 50", got)
	}
	r = mustQuery(t, db, `
		select d_name from dept
		where exists (select * from emp where e_dept = d_id and e_salary > 1995)
		order by d_name`)
	// salaries 1010.50..2000.50; e_salary > 1995 → emp 100 only (dept 1).
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "dept-1" {
		t.Errorf("exists rows = %v", r.Rows)
	}
	// NOT EXISTS.
	r = mustQuery(t, db, `
		select count(*) from dept
		where not exists (select * from emp where e_dept = d_id)`)
	if r.Rows[0][0].Int64() != 0 {
		t.Errorf("not exists = %v", r.Rows[0])
	}
}

func TestCorrelatedScalarDecorrelation(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	// Employees earning above their department average.
	r := mustQuery(t, db, `
		select count(*) from emp e1
		where e_salary > (select avg(e_salary) from emp where e_dept = e1.e_dept)`)
	got := r.Rows[0][0].Int64()
	if got < 40 || got > 60 {
		t.Errorf("above-dept-average = %d, want ≈50", got)
	}
	// Cross-check against a manual computation via two queries.
	avg := map[int32]float64{}
	ra := mustQuery(t, db, "select e_dept, avg(e_salary) from emp group by e_dept")
	for _, row := range ra.Rows {
		avg[row[0].Int32()] = row[1].Float64()
	}
	re := mustQuery(t, db, "select e_dept, e_salary from emp")
	want := int64(0)
	for _, row := range re.Rows {
		if row[1].Float64() > avg[row[0].Int32()] {
			want++
		}
	}
	if got != want {
		t.Errorf("decorrelated count = %d, manual = %d", got, want)
	}
}

func TestInSubquery(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	r := mustQuery(t, db, `
		select count(*) from emp
		where e_dept in (select d_id from dept where d_region = 'R1')`)
	if got := r.Rows[0][0].Int64(); got != 50 {
		t.Errorf("in-subquery count = %d, want 50", got)
	}
	r = mustQuery(t, db, `
		select count(*) from emp
		where e_dept not in (select d_id from dept where d_region = 'R1')`)
	if got := r.Rows[0][0].Int64(); got != 50 {
		t.Errorf("not-in count = %d, want 50", got)
	}
}

func TestHavingAndOrderDesc(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	r := mustQuery(t, db, `
		select e_dept, count(*) as c, sum(e_salary) as s
		from emp group by e_dept
		having count(*) >= 25
		order by s desc`)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i][2].Float64() > r.Rows[i-1][2].Float64() {
			t.Errorf("not sorted desc: %v", r.Rows)
		}
	}
}

func TestDistinctAndCase(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	r := mustQuery(t, db, "select distinct d_region from dept order by d_region")
	if len(r.Rows) != 2 {
		t.Fatalf("distinct regions = %d", len(r.Rows))
	}
	r = mustQuery(t, db, `
		select sum(case when e_salary > 1500 then 1 else 0 end) from emp`)
	// salaries 1010.50..2000.50 step 10: emp 50..100 qualify (51 rows).
	if got := r.Rows[0][0].Int64(); got != 51 {
		t.Errorf("case sum = %d", got)
	}
}

func TestDerivedTableAndCTE(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	r := mustQuery(t, db, `
		select region, total from (
			select d_region as region, sum(e_salary) as total
			from dept, emp where d_id = e_dept
			group by d_region
		) as t
		order by total desc`)
	if len(r.Rows) != 2 {
		t.Fatalf("derived rows = %d", len(r.Rows))
	}
	r2 := mustQuery(t, db, `
		with totals as (
			select e_dept as dept, sum(e_salary) as total from emp group by e_dept
		)
		select dept, total from totals
		where total = (select max(total) from totals)`)
	if len(r2.Rows) != 1 {
		t.Fatalf("cte rows = %d", len(r2.Rows))
	}
}

func TestUpdateDelete(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	n, err := db.Exec("update emp set e_salary = e_salary * 2 where e_dept = 1")
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("updated %d, want 25", n)
	}
	r := mustQuery(t, db, "select max(e_salary) from emp where e_dept = 1")
	// dept 1 holds e ≡ 0 (mod 4); its max salary is emp 100's 2000.50.
	if r.Rows[0][0].Float64() != 2*2000.50 {
		t.Errorf("max after update = %v", r.Rows[0][0])
	}
	n, err = db.Exec("delete from emp where e_dept = 2")
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Fatalf("deleted %d", n)
	}
	r = mustQuery(t, db, "select count(*) from emp")
	if r.Rows[0][0].Int64() != 75 {
		t.Errorf("count after delete = %v", r.Rows[0][0])
	}
	// Index consistency after delete: point lookups via pkey still work.
	r = mustQuery(t, db, "select count(*) from emp where e_id = 2") // dept 3
	if r.Rows[0][0].Int64() != 1 {
		t.Errorf("lookup after delete = %v", r.Rows[0][0])
	}
}

func TestTxnRollback(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	prof := &profile.Counters{}
	txn := db.Begin(prof)
	if err := txn.Insert("dept", []types.Datum{
		types.NewInt32(50), types.NewString("temp"), types.NewChar("R9"),
	}); err != nil {
		t.Fatal(err)
	}
	row, tid, found, err := txn.GetByIndex("dept_pkey", []types.Datum{types.NewInt32(1)})
	if err != nil || !found {
		t.Fatalf("lookup: %v %v", found, err)
	}
	newRow := append([]types.Datum(nil), row...)
	newRow[1] = types.NewString("changed")
	if err := txn.UpdateRow("dept", tid, row, newRow); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	r := mustQuery(t, db, "select count(*) from dept")
	if r.Rows[0][0].Int64() != 4 {
		t.Errorf("rollback lost: %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, "select d_name from dept where d_id = 1")
	if r.Rows[0][0].Str() != "dept-1" {
		t.Errorf("update not rolled back: %v", r.Rows[0][0])
	}
}

func TestTxnCommitAndIndexScan(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	mustExec(t, db, "create index emp_by_dept on emp (e_dept, e_id)")
	txn := db.Begin(nil)
	count := 0
	err := txn.ScanIndexPrefix("emp_by_dept", []types.Datum{types.NewInt32(3)}, func(row []types.Datum, _ heap.TID) bool {
		count++
		return true
	})
	txn.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if count != 25 {
		t.Errorf("index prefix scan = %d, want 25", count)
	}
}

func TestDDLErrors(t *testing.T) {
	db := newDB(t, core.AllRoutines)
	mustExec(t, db, "create table t (a integer not null, primary key (a))")
	if _, err := db.Exec("create table t (a integer not null)"); err == nil {
		t.Error("duplicate table must fail")
	}
	if _, err := db.Exec("create table u (a integer not null, primary key (b))"); err == nil {
		t.Error("bad pkey must fail")
	}
	if _, err := db.Exec("insert into t values (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("insert into t values (1)"); err == nil {
		t.Error("pkey violation must fail")
	}
	if _, err := db.Exec("drop table t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("select * from t"); err == nil {
		t.Error("query of dropped table must fail")
	}
	if _, err := db.Query("select nosuchcol from nosuchtable"); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestBulkLoadAndStats(t *testing.T) {
	db := newDB(t, core.AllRoutines)
	mustExec(t, db, `create table items (
		i_id integer not null,
		i_flag char(1) not null lowcard,
		i_name varchar(24) not null,
		primary key (i_id))`)
	i := 0
	n, err := db.BulkLoad("items", nil, func() ([]types.Datum, bool) {
		if i >= 1000 {
			return nil, false
		}
		i++
		flag := "A"
		if i%3 == 0 {
			flag = "B"
		}
		return []types.Datum{
			types.NewInt32(int32(i)),
			types.NewChar(flag),
			types.NewString(fmt.Sprintf("item-%d", i)),
		}, true
	})
	if err != nil || n != 1000 {
		t.Fatalf("bulk load: %d, %v", n, err)
	}
	r := mustQuery(t, db, "select count(*) from items where i_flag = 'B'")
	if r.Rows[0][0].Int64() != 333 {
		t.Errorf("flag B count = %v", r.Rows[0][0])
	}
	// Tuple bees were created for the two flag values.
	if got := db.Module().Stats().TupleBees; got != 2 {
		t.Errorf("tuple bees = %d, want 2", got)
	}
}

func TestProfiledQueryChargesInstructions(t *testing.T) {
	db := setupMini(t, core.Stock)
	prof := &profile.Counters{}
	if _, err := db.QueryProfiled("select e_name from emp", prof); err != nil {
		t.Fatal(err)
	}
	if prof.Total() == 0 {
		t.Error("profiled query must charge instructions")
	}
	if prof.Component(profile.CompDeform) == 0 {
		t.Error("scan must charge deform instructions")
	}
}

func TestEVAAndIDXIntegration(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	// EVA: the aggregate input is compiled; calls are counted.
	r := mustQuery(t, db, "select e_dept, sum(e_salary * 2) from emp group by e_dept")
	if len(r.Rows) != 4 {
		t.Fatalf("groups = %d", len(r.Rows))
	}
	if got := db.Module().Stats().EVACalls; got < 100 {
		t.Errorf("EVACalls = %d, want ≥100 (one per input row)", got)
	}
	// IDX: primary-key lookups go through the specialized comparator and
	// still find the right rows.
	txn := db.Begin(nil)
	row, _, found, err := txn.GetByIndex("emp_pkey", []types.Datum{types.NewInt32(77)})
	txn.Commit()
	if err != nil || !found {
		t.Fatalf("IDX lookup: %v %v", found, err)
	}
	if row[0].Int32() != 77 {
		t.Errorf("IDX lookup returned %v", row[0])
	}
}

func TestEngineSetRoutines(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	// Turning EVP/EVJ/EVA off must keep results identical (GCL stays: the
	// storage is specialized).
	want := mustQuery(t, db, "select d_region, sum(e_salary) from emp, dept where e_dept = d_id group by d_region order by d_region")
	if err := db.SetRoutines(core.RoutineSet{GCL: true, SCL: true, TupleBees: true}); err != nil {
		t.Fatal(err)
	}
	got := mustQuery(t, db, "select d_region, sum(e_salary) from emp, dept where e_dept = d_id group by d_region order by d_region")
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("row counts differ")
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if want.Rows[i][j].Compare(got.Rows[i][j]) != 0 {
				t.Errorf("row %d col %d: %v vs %v", i, j, want.Rows[i][j], got.Rows[i][j])
			}
		}
	}
	// Disabling GCL with specialized storage must fail (dept/emp... emp
	// has no lowcard attrs; dept does).
	if err := db.SetRoutines(core.Stock); err == nil {
		t.Error("SetRoutines(Stock) must fail with specialized storage")
	}
}
