package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/plan"
	"microspec/internal/sql"
	"microspec/internal/trace"
	"microspec/internal/txn"
	"microspec/internal/types"
)

// This file implements parameterized prepared statements — the payoff of
// the slot-pointer design threaded through expr.Param, the planner, and
// the query-bee compiler. PREPARE parses and (for SELECTs) plans the
// statement once; every query bee the plan needs is created at that
// point, with parameter references compiled as slot reads. EXECUTE then
// only writes the bound values into the slot array and re-runs the
// cached plan tree: no parse, no plan, no bee compilation. Because bee
// cache keys render parameters as "$n", two sessions preparing the same
// text share the module's bee cache entries even though each holds its
// own plan.
//
// Cached plans are invalidated by two generation counters on the DB:
// ddlGen (schema or routine-set changes → full replan, the plan may hold
// dropped heaps or stale bees) and dataGen (row modifications → drop the
// plan's cross-run caches — Materialize buffers, uncorrelated subquery
// results — while keeping the compiled bees).

// ErrStmtClosed is returned by Query/Exec on a closed prepared statement.
var ErrStmtClosed = errors.New("engine: prepared statement is closed")

// Stmt is a prepared statement bound to one DB. A Stmt serializes its own
// executions (s.mu): the slot array the compiled bees read is shared with
// the cached plan, so two concurrent EXECUTEs of one Stmt would race on
// parameter values. Different Stmts — including Stmts for the same SQL
// text on other sessions — execute concurrently like any queries.
type Stmt struct {
	db   *DB
	text string
	opts QueryOpts
	// sel is set for SELECT statements (planned eagerly, cached); ast for
	// everything else (dispatched per execute like ad-hoc statements, but
	// with the parse amortized and parameters bound via slots).
	sel *sql.Select
	ast sql.Statement

	nParams int
	execs   atomic.Int64

	mu       sync.Mutex
	closed   bool
	slots    *expr.ParamSlots
	pl       plan.Planner // private copy: Params points at slots
	planned  *plan.Planned
	analyzed bool // root stays instrumented so loops accumulate
	ddlGen   uint64
	dataGen  uint64
}

// Prepare parses text once and, for a SELECT, plans it eagerly — creating
// its query bees — so executions only bind parameters and run.
// Placeholders are $1, $2, ... (1-based).
func (db *DB) Prepare(text string) (*Stmt, error) {
	return db.PrepareWith(text, QueryOpts{})
}

// PrepareWith is Prepare with session-scoped setting overrides baked into
// the cached plan (parallelism degree, batch choice) and applied per
// execution (timeout).
func (db *DB) PrepareWith(text string, opts QueryOpts) (*Stmt, error) {
	return db.prepareWith(text, opts, false)
}

// prepareWith is the shared implementation. internal is set by recovery's
// manifest replay, which must prepare while the recovering flag still
// rejects client work.
func (db *DB) prepareWith(text string, opts QueryOpts, internal bool) (*Stmt, error) {
	if !internal && db.recovering.Load() {
		return nil, ErrRecovering
	}
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	s := &Stmt{db: db, text: text, opts: opts, nParams: sql.MaxParam(stmt)}
	s.slots = &expr.ParamSlots{Vals: make([]types.Datum, s.nParams)}
	for i := range s.slots.Vals {
		s.slots.Vals[i] = types.Null
	}
	switch st := stmt.(type) {
	case *sql.Select:
		s.sel = st
		db.mu.RLock()
		s.pl = *db.planner
		if opts.Workers > 0 {
			s.pl.Workers = opts.Workers
		}
		if opts.Batch != nil {
			s.pl.Batch = *opts.Batch
		}
		s.pl.Params = s.slots
		err = s.replanLocked()
		db.mu.RUnlock()
		if err != nil {
			return nil, err
		}
	default:
		s.ast = stmt
	}
	db.obs.prepares.Inc()
	db.notePrepared(text)
	return s, nil
}

// replanLocked plans (or re-plans) the SELECT and records the generation
// stamps the plan is valid for. Caller holds db.mu (read suffices: the
// planner only reads catalog/heap state) and s.mu when called from run.
func (s *Stmt) replanLocked() error {
	s.pl.ParamTypes = make([]types.T, s.nParams)
	planned, err := s.pl.PlanSelect(s.sel)
	if err != nil {
		return err
	}
	s.planned = planned
	s.ddlGen = s.db.ddlGen.Load()
	s.dataGen = s.db.dataGen.Load()
	return nil
}

// Text returns the statement's SQL.
func (s *Stmt) Text() string { return s.text }

// NumParams returns how many $n placeholders the statement has.
func (s *Stmt) NumParams() int { return s.nParams }

// IsSelect reports whether the statement is a query (Query/ExplainAnalyze)
// rather than DML/DDL (Exec).
func (s *Stmt) IsSelect() bool { return s.sel != nil }

// Columns returns the result columns of a prepared SELECT (nil for DML),
// available before the first execution — the wire protocol's statement
// description.
func (s *Stmt) Columns() []exec.ColInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.planned == nil {
		return nil
	}
	return s.planned.Cols
}

// Executions returns how many times the statement has been executed.
func (s *Stmt) Executions() int64 { return s.execs.Load() }

// Close releases the statement. Executing a closed statement fails with
// ErrStmtClosed; Close is idempotent.
func (s *Stmt) Close() {
	s.mu.Lock()
	first := !s.closed
	s.closed = true
	s.planned = nil
	s.mu.Unlock()
	if first {
		s.db.dropPrepared(s.text)
	}
}

// Query executes a prepared SELECT with the given parameter values.
func (s *Stmt) Query(params ...types.Datum) (*Result, error) {
	return s.QueryContext(context.Background(), params...)
}

// QueryContext is Query under a context; cancellation and deadlines
// behave as in DB.QueryContext.
func (s *Stmt) QueryContext(ctx context.Context, params ...types.Datum) (*Result, error) {
	res, _, err := s.run(ctx, false, params)
	return res, err
}

// ExplainAnalyze executes the prepared SELECT instrumented and returns
// the annotated plan outline alongside the result. The instrumentation
// stays attached to the cached plan, so across repeated executions the
// per-node loop counts accumulate — the visible proof that EXECUTE reuses
// the same plan nodes and query bees instead of recompiling
// (loops=N after N executions, while bees.query stays flat).
func (s *Stmt) ExplainAnalyze(params ...types.Datum) (string, *Result, error) {
	return s.ExplainAnalyzeContext(context.Background(), params...)
}

// ExplainAnalyzeContext is ExplainAnalyze under a context; a trace carried
// by ctx gets the same flat bind/plan/exec spans as QueryContext, and the
// outline is stamped with the trace ID.
func (s *Stmt) ExplainAnalyzeContext(ctx context.Context, params ...types.Datum) (string, *Result, error) {
	res, root, err := s.run(ctx, true, params)
	if err != nil {
		return "", nil, err
	}
	out := plan.ExplainAnalyze(root)
	if at := trace.FromContext(ctx); at != nil {
		out += "trace: " + trace.IDString(at.ID()) + "\n"
	}
	return out, res, nil
}

// run is the EXECUTE path for prepared SELECTs: bind, validate the cached
// plan against the generation counters, run with the same panic
// containment and quarantine-retry as ad-hoc queries.
func (s *Stmt) run(qctx context.Context, analyze bool, params []types.Datum) (*Result, exec.Node, error) {
	db := s.db
	start := time.Now()
	// EXECUTE traces get flat bind/plan/exec spans. Per-node spans are not
	// folded here: the cached plan is only instrumented when ANALYZE asked
	// for it, and its node counters accumulate across executions.
	at := trace.FromContext(qctx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrStmtClosed
	}
	if db.recovering.Load() {
		return nil, nil, ErrRecovering
	}
	if s.sel == nil {
		return nil, nil, fmt.Errorf("engine: prepared statement is not a SELECT; use Exec")
	}
	bindSpan := at.Span("bind")
	err := s.bind(params)
	bindSpan.End()
	if err != nil {
		db.obs.observeExecute(s.text, time.Since(start), 0, err, at.ID())
		return nil, nil, err
	}
	if qctx == nil {
		qctx = context.Background()
	}
	d := db.StatementTimeout()
	if s.opts.Timeout > 0 {
		d = s.opts.Timeout
	}
	if d > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(qctx, d)
		defer cancel()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	// Same snapshot discipline as ad-hoc queries (see runSelect).
	snap := db.tm.Snapshot(txn.None)
	defer snap.Release()
	if analyze {
		s.analyzed = true
	}
	if s.planned != nil && db.ddlGen.Load() != s.ddlGen {
		// Schema or routine set changed: the plan may reference dropped
		// heaps or bees built for a different specialization level.
		s.planned = nil
		db.obs.preparedReplans.Inc()
	}
	var rows []expr.Row
	var root exec.Node
	for attempt := 0; ; attempt++ {
		if s.planned == nil {
			planSpan := at.Span("plan")
			err = s.replanLocked()
			planSpan.End()
			if err != nil {
				db.obs.observeExecute(s.text, time.Since(start), 0, err, at.ID())
				return nil, nil, err
			}
		} else if dg := db.dataGen.Load(); dg != s.dataGen {
			// Rows changed since the last execution: drop the plan's
			// cross-run caches, keep its compiled bees.
			exec.ResetCaches(s.planned.Root)
			s.dataGen = dg
			db.obs.preparedResets.Inc()
		}
		if s.analyzed && !isInstrumented(s.planned.Root) {
			s.planned.Root = exec.Instrument(s.planned.Root)
		}
		root = s.planned.Root
		execSpan := at.Span("exec")
		rows, err = collectSafe(&exec.Ctx{Context: qctx, Expr: expr.Ctx{}, Snap: snap}, root)
		execSpan.End()
		var pe *exec.PanicError
		if attempt == 0 && errors.As(err, &pe) && db.quarantinePlanBees(root) > 0 {
			// Same containment as runSelect: quarantine the plan's bees and
			// replan once — the new plan's compile calls find them
			// quarantined and fall back to the generic routines.
			db.obs.quarantineRetries.Inc()
			s.planned = nil
			continue
		}
		break
	}
	s.execs.Add(1)
	db.obs.observeExecute(s.text, time.Since(start), int64(len(rows)), err, at.ID())
	if err != nil {
		return nil, nil, err
	}
	db.obs.observeParallel(root)
	db.obs.observeBatch(root)
	db.advisorObservePlan(root, s.sel, time.Since(start))
	return &Result{Cols: s.planned.Cols, Rows: rows}, root, nil
}

// Exec executes a prepared DML/DDL statement with the given parameters.
func (s *Stmt) Exec(params ...types.Datum) (int64, error) {
	return s.ExecContext(context.Background(), params...)
}

// ExecContext is Exec under a context. DML executes as its own
// transaction under the table latch and is not cancellable
// mid-statement; ctx carries the request trace (bind/exec spans) and is
// otherwise accepted for call-site symmetry with QueryContext.
func (s *Stmt) ExecContext(ctx context.Context, params ...types.Datum) (int64, error) {
	db := s.db
	start := time.Now()
	at := trace.FromContext(ctx)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrStmtClosed
	}
	if db.recovering.Load() {
		return 0, ErrRecovering
	}
	if s.sel != nil {
		return 0, fmt.Errorf("engine: prepared statement is a SELECT; use Query")
	}
	bindSpan := at.Span("bind")
	err := s.bind(params)
	bindSpan.End()
	if err != nil {
		db.obs.observeExecuteStmt(s.text, time.Since(start), 0, err, at.ID())
		return 0, err
	}
	execSpan := at.Span("exec")
	n, err := s.execOnce()
	execSpan.End()
	s.execs.Add(1)
	db.obs.observeExecuteStmt(s.text, time.Since(start), n, err, at.ID())
	return n, err
}

// execOnce dispatches one prepared DML/DDL execution inside the same
// panic-containment boundary as ad-hoc statements.
func (s *Stmt) execOnce() (n int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = exec.NewPanicError(r)
		}
	}()
	db := s.db
	switch st := s.ast.(type) {
	case *sql.Insert:
		return db.execInsert(st, nil, s.slots)
	case *sql.Update:
		return db.execUpdate(st, nil, s.slots)
	case *sql.Delete:
		return db.execDelete(st, nil, s.slots)
	case *sql.CreateTable:
		return 0, db.createTable(st)
	case *sql.CreateIndex:
		return 0, db.createIndex(st)
	case *sql.DropTable:
		return 0, db.dropTable(st.Name)
	default:
		return 0, fmt.Errorf("engine: unsupported prepared statement %T", s.ast)
	}
}

// bind writes the parameter values into the slot array the compiled plan
// reads. Values are coerced to the types inferred at plan time where the
// coercion is lossless (integer → float); anything else is passed
// through and compared with the generic cross-kind comparators.
func (s *Stmt) bind(params []types.Datum) error {
	if len(params) != s.nParams {
		return fmt.Errorf("engine: statement has %d parameters, got %d", s.nParams, len(params))
	}
	for i, d := range params {
		if i < len(s.pl.ParamTypes) {
			d = coerceParam(d, s.pl.ParamTypes[i])
		}
		s.slots.Vals[i] = d
	}
	return nil
}

func coerceParam(d types.Datum, t types.T) types.Datum {
	if d.IsNull() {
		return d
	}
	if t.Kind == types.KindFloat64 {
		switch d.Kind() {
		case types.KindInt32, types.KindInt64:
			return types.NewFloat64(float64(d.Int64()))
		}
	}
	return d
}

func isInstrumented(n exec.Node) bool {
	switch n.(type) {
	case *exec.Instrumented, *exec.InstrumentedBatch:
		return true
	}
	return false
}
