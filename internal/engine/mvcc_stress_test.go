package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"microspec/internal/core"
	"microspec/internal/txn"
	"microspec/internal/types"
)

// TestConcurrentUpdateReadVisibility hammers one small table with
// concurrent updaters (some rolling back) while readers point-fetch
// every key through the index. A reader must always find exactly one
// visible version of every row — TPC-C's stock table turned this up:
// under churn plus threshold vacuum, point reads briefly found no
// visible version at all.
func TestConcurrentUpdateReadVisibility(t *testing.T) {
	db := Open(Config{Routines: core.Stock, VacuumEvery: 64})
	mustExec(t, db, "create table gauge (g_w int, g_i int, g_q int)")
	mustExec(t, db, "create unique index gauge_pkey on gauge (g_w, g_i)")
	const rows = 40
	for i := 1; i <= rows; i++ {
		mustExec(t, db, fmt.Sprintf("insert into gauge values (1, %d, 100)", i))
	}

	i32 := func(v int) types.Datum { return types.NewInt32(int32(v)) }
	var stop atomic.Bool
	var wg, writers sync.WaitGroup
	errCh := make(chan error, 16)

	for w := 0; w < 6; w++ {
		wg.Add(1)
		writers.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 400 && !stop.Load(); n++ {
				tx := db.Begin(nil)
				ok := true
				for k := 0; k < 8; k++ {
					key := 1 + rng.Intn(rows)
					row, tid, found, err := tx.GetByIndex("gauge_pkey", []types.Datum{i32(1), i32(key)})
					if err != nil || !found {
						// Losing a conflict mid-read is impossible (reads don't
						// stamp); not finding the row is the bug under test.
						errCh <- fmt.Errorf("writer: gauge (1,%d): found=%v err=%v", key, found, err)
						stop.Store(true)
						ok = false
						break
					}
					upd := append([]types.Datum(nil), row...)
					upd[2] = i32(int(row[2].Int32()) + 1)
					if err := tx.UpdateRow("gauge", tid, row, upd); err != nil {
						if errors.Is(err, txn.ErrWriteConflict) {
							ok = false
							break
						}
						errCh <- fmt.Errorf("writer: update: %v", err)
						stop.Store(true)
						ok = false
						break
					}
				}
				if !ok || rng.Intn(20) == 0 {
					tx.Rollback()
					continue
				}
				tx.Commit()
			}
		}(int64(1000 + w))
	}

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				tx := db.Begin(nil)
				for k := 0; k < 16; k++ {
					key := 1 + rng.Intn(rows)
					_, _, found, err := tx.GetByIndex("gauge_pkey", []types.Datum{i32(1), i32(key)})
					if err != nil || !found {
						errCh <- fmt.Errorf("reader: gauge (1,%d): found=%v err=%v\n%s",
							key, found, err, debugDumpKey(tx, "gauge_pkey", []types.Datum{i32(1), i32(key)}))
						stop.Store(true)
						break
					}
				}
				tx.Commit()
			}
		}(int64(2000 + r))
	}

	writers.Wait()
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// debugDumpKey renders every index entry under key with its version
// stamps and the snapshot's view — diagnostics for the test above.
func debugDumpKey(t *Txn, indexName string, key []types.Datum) string {
	ix, rel, err := t.indexFor(indexName)
	if err != nil {
		return err.Error()
	}
	var b []byte
	tids := t.collectPrefix(ix, rel, key)
	b = fmt.Appendf(b, "snapshot self=%d; %d entries under key\n", t.id, len(tids))
	for _, tid := range tids {
		xmin, xmax, present, _ := rel.heap.Stamps(tid)
		b = fmt.Appendf(b, "  tid=%v present=%v xmin=%d(%v) xmax=%d(%v)\n",
			tid, present, xmin, t.db.tm.Status(xmin), xmax, t.db.tm.Status(xmax))
	}
	return string(b)
}
