package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"microspec/internal/core"
	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/index/btree"
	"microspec/internal/profile"
	"microspec/internal/storage/heap"
	"microspec/internal/txn"
	"microspec/internal/types"
)

// This file implements transaction bees — the fourth bee kind (see
// core/txnbee.go), fusing a whole OLTP transaction into one compiled
// unit. The statement-at-a-time path (Txn in txn.go) pays, for every
// point operation, a catalog map lookup, a table-latch acquire/release
// pair, and an undo closure that re-acquires the latch on rollback; a
// CompiledTxn pre-resolves every table handle, index tree, and
// deform/form routine once, computes one latch-acquisition plan up
// front (tables sorted by RelID, acquired once for the whole
// transaction), and commits with a single WAL record and one
// group-commit wait.
//
// Deadlock safety: the latch plan acquires table latches in canonical
// RelID order, and every other path in the engine (DML statements,
// interactive Txn operations, vacuum) holds at most one table latch at
// a time and never blocks on a second while holding the first — so the
// multi-latch fused path cannot form a cycle with them or with another
// fused transaction (both sort the same way). See docs/CONCURRENCY.md.
//
// Invalidation mirrors prepared statements (prepare.go): a DDL bump of
// db.ddlGen makes the next Run re-resolve its handles (txn_bee.replans);
// a panic inside the fused body quarantines the bee, rolls the
// transaction back, and surfaces a PanicError so the caller retries the
// same transaction statement-at-a-time (txn_bee.fallbacks).

// ErrTxnBeeUnavailable reports that a transaction bee cannot run —
// quarantined after a panic, or its compilation was refused. Callers
// fall back to the statement-at-a-time path.
var ErrTxnBeeUnavailable = errors.New("engine: transaction bee unavailable")

// TxnSpec declares a whole-transaction bee: the tables it touches
// (writes latched exclusively, reads shared) and the indexes it probes.
// Table and index ordinals — positions in Writes++Reads and in Indexes —
// are baked into the fused body at compile time, so execution does no
// name resolution at all.
type TxnSpec struct {
	Name    string
	Writes  []string // tables modified: latched exclusively
	Reads   []string // tables only read through indexes: latched shared
	Indexes []string // index names, each on a declared table
}

// txnTable is one pre-resolved table: handle, baked deform/form
// routines, and its latch mode in the fused latch plan.
type txnTable struct {
	rel   relHandle
	acc   *relAccess
	write bool
}

// txnResolved is one generation of a CompiledTxn's pre-resolved state;
// it is immutable once published and swapped wholesale on replan.
type txnResolved struct {
	ddlGen     uint64
	tables     []txnTable // spec order: Writes then Reads
	latchOrder []int      // indices into tables, sorted by RelID
	indexes    []txnIndex // spec order
}

type txnIndex struct {
	ix  *Index
	tbl int // ordinal of the owning table in txnResolved.tables
}

// CompiledTxn is a whole-transaction bee. Compile once with
// DB.CompileTxn, then Run the fused body any number of times from any
// goroutine; replans after DDL are transparent.
type CompiledTxn struct {
	db    *DB
	spec  TxnSpec
	usage *core.BeeUsage
	execs atomic.Int64
	mu    sync.Mutex // serializes replans; Run reads res lock-free
	res   atomic.Pointer[txnResolved]
}

// CompileTxn resolves spec into a transaction bee and registers it in
// the bee cache/benefit tables under kind "txn". It returns
// ErrTxnBeeUnavailable while the bee is quarantined.
func (db *DB) CompileTxn(spec TxnSpec) (*CompiledTxn, error) {
	db.mu.RLock()
	res, err := db.resolveTxn(spec)
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	ct := &CompiledTxn{db: db, spec: spec}
	ct.res.Store(res)
	if err := ct.register(res); err != nil {
		return nil, err
	}
	return ct, nil
}

// register (re-)records the bee in the module's cache and usage tables.
// The per-operation cost pair is scaled by nothing: usage is reported in
// operations, so the benefit estimate is observed time × the per-op
// stock/bee overhead ratio.
func (ct *CompiledTxn) register(res *txnResolved) error {
	usage, ok := ct.db.mod.RegisterTxnBee(ct.spec.Name, txnBeeSource(ct.spec, res),
		core.TxnOpBeeCost, core.TxnOpStockCost)
	if !ok {
		return fmt.Errorf("%w: %s is quarantined", ErrTxnBeeUnavailable, ct.spec.Name)
	}
	ct.usage = usage
	return nil
}

// txnBeeSource renders the fused unit's "object code" for the bee
// cache: the latch plan and pre-resolved index paths.
func txnBeeSource(spec TxnSpec, res *txnResolved) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TXN %s latch[", spec.Name)
	for i, ti := range res.latchOrder {
		if i > 0 {
			b.WriteByte(' ')
		}
		t := res.tables[ti]
		mode := "r"
		if t.write {
			mode = "w"
		}
		fmt.Fprintf(&b, "%s:%s", t.rel.rel.Name, mode)
	}
	b.WriteString("] idx[")
	for i, name := range spec.Indexes {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(name)
	}
	b.WriteString("] commit=single")
	return b.String()
}

// resolveTxn pre-resolves spec's handles. Caller holds db.mu (any mode).
func (db *DB) resolveTxn(spec TxnSpec) (*txnResolved, error) {
	res := &txnResolved{ddlGen: db.ddlGen.Load()}
	seen := make(map[string]bool, len(spec.Writes)+len(spec.Reads))
	add := func(name string, write bool) error {
		if seen[name] {
			return fmt.Errorf("engine: txn %s declares table %s twice", spec.Name, name)
		}
		seen[name] = true
		rel, err := db.handleFor(name)
		if err != nil {
			return err
		}
		acc, err := db.accessFor(rel.rel)
		if err != nil {
			return err
		}
		res.tables = append(res.tables, txnTable{rel: rel, acc: acc, write: write})
		return nil
	}
	for _, n := range spec.Writes {
		if err := add(n, true); err != nil {
			return nil, err
		}
	}
	for _, n := range spec.Reads {
		if err := add(n, false); err != nil {
			return nil, err
		}
	}
	res.latchOrder = make([]int, len(res.tables))
	for i := range res.latchOrder {
		res.latchOrder[i] = i
	}
	sort.Slice(res.latchOrder, func(a, b int) bool {
		return res.tables[res.latchOrder[a]].rel.rel.ID < res.tables[res.latchOrder[b]].rel.rel.ID
	})
	byID := make(map[string]int, len(res.tables))
	for i, t := range res.tables {
		byID[t.rel.rel.Name] = i
	}
	for _, name := range spec.Indexes {
		ix, ok := db.indexes[name]
		if !ok {
			return nil, fmt.Errorf("engine: txn %s: no index %q", spec.Name, name)
		}
		ti, ok := byID[ix.Rel.Name]
		if !ok {
			return nil, fmt.Errorf("engine: txn %s: index %s is on undeclared table %s",
				spec.Name, name, ix.Rel.Name)
		}
		res.indexes = append(res.indexes, txnIndex{ix: ix, tbl: ti})
	}
	return res, nil
}

// NoteTxnBeeFallback counts a fused transaction that was retried
// statement-at-a-time by a caller driving CompiledTxn directly (the SQL
// path in txnstmt.go counts its own fallbacks).
func (db *DB) NoteTxnBeeFallback() { db.obs.txnBeeFallbacks.Inc() }

// Execs returns how many times the fused unit has run.
func (ct *CompiledTxn) Execs() int64 { return ct.execs.Load() }

// Name returns the bee's name.
func (ct *CompiledTxn) Name() string { return ct.spec.Name }

// current returns the pre-resolved state, replanning if DDL moved the
// schema generation since it was built. Caller holds db.mu shared.
func (ct *CompiledTxn) current() (*txnResolved, error) {
	res := ct.res.Load()
	if res.ddlGen == ct.db.ddlGen.Load() {
		return res, nil
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	res = ct.res.Load()
	if res.ddlGen == ct.db.ddlGen.Load() {
		return res, nil
	}
	fresh, err := ct.db.resolveTxn(ct.spec)
	if err != nil {
		return nil, err
	}
	if err := ct.register(fresh); err != nil {
		return nil, err
	}
	ct.res.Store(fresh)
	ct.db.obs.txnBeeReplans.Inc()
	return fresh, nil
}

// Run executes one fused transaction: latch plan acquired up front,
// body run against pre-resolved handles through ft, single commit
// record, one group-commit wait. A non-nil error means the transaction
// rolled back (the body's error is returned; a body panic comes back as
// a *exec.PanicError after the bee is quarantined — retry
// statement-at-a-time). Run returns ErrTxnBeeUnavailable without doing
// anything while the bee is quarantined.
func (ct *CompiledTxn) Run(prof *profile.Counters, body func(ft *FastTxn) error) error {
	db := ct.db
	if db.recovering.Load() {
		return ErrRecovering
	}
	if !db.mod.TxnBeeAllowed(ct.spec.Name) {
		return fmt.Errorf("%w: %s is quarantined", ErrTxnBeeUnavailable, ct.spec.Name)
	}
	db.mu.RLock()
	res, err := ct.current()
	if err != nil {
		db.mu.RUnlock()
		return err
	}
	for _, ti := range res.latchOrder {
		t := &res.tables[ti]
		if t.write {
			t.rel.latch.Lock()
		} else {
			t.rel.latch.RLock()
		}
	}
	unlatch := func() {
		for i := len(res.latchOrder) - 1; i >= 0; i-- {
			t := &res.tables[res.latchOrder[i]]
			if t.write {
				t.rel.latch.Unlock()
			} else {
				t.rel.latch.RUnlock()
			}
		}
	}
	xid := db.tm.Begin()
	snap := db.tm.Snapshot(xid)
	ft := &FastTxn{db: db, prof: prof, id: xid, snap: snap, res: res}
	start := time.Now()
	err = runTxnBody(db.mod, ct.spec.Name, ft, body)
	if err != nil {
		// Roll back: latches are still held, so the undos replay directly.
		for i := len(ft.undo) - 1; i >= 0; i-- {
			_ = ft.undo[i]()
		}
		if len(ft.undo) > 0 {
			db.dataGen.Add(1)
		}
		db.logAbort(xid)
		db.tm.Abort(xid)
		snap.Release()
		unlatch()
		db.mu.RUnlock()
		if isConflict(err) {
			db.obs.txnConflicts.Inc()
		}
		var pe *exec.PanicError
		if errors.As(err, &pe) {
			db.mod.Quarantine(core.TxnBeeKind, ct.spec.Name)
		}
		return err
	}
	lsn, err := db.logCommit(xid)
	if err != nil {
		// The commit record never reached the log: abort. The versions
		// stay stamped with the aborted xid, invisible until vacuum.
		db.tm.Abort(xid)
		snap.Release()
		unlatch()
		db.mu.RUnlock()
		return err
	}
	db.tm.Commit(xid)
	snap.Release()
	if len(ft.undo) > 0 {
		db.dataGen.Add(1)
	}
	for _, ti := range res.latchOrder {
		t := &res.tables[ti]
		if t.write {
			db.maybeVacuumLocked(t.rel, prof)
		}
	}
	unlatch()
	db.mu.RUnlock()
	ct.execs.Add(1)
	db.obs.txnBeeExecs.Inc()
	ct.usage.Note(ft.ops, time.Since(start).Nanoseconds())
	return db.waitDurable(lsn)
}

// runTxnBody runs the fused body behind a panic boundary: a panic
// (including the injected-failpoint kind) converts to *exec.PanicError
// so Run can quarantine the bee and the caller can fall back.
func runTxnBody(mod *core.Module, name string, ft *FastTxn, body func(ft *FastTxn) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = exec.NewPanicError(r)
		}
	}()
	mod.TxnBeePanicPoint(name)
	return body(ft)
}

// FastTxn is the execution context a fused body runs against: the Txn
// point-access API with every per-operation overhead deleted. All table
// latches are already held (the latch plan), handles and deform/form
// routines are pre-resolved, and undo records append to a plain slice —
// rollback replays them while the latches are still held. Tables and
// indexes are addressed by their ordinal in the TxnSpec (position in
// Writes++Reads, and in Indexes).
type FastTxn struct {
	db   *DB
	prof *profile.Counters
	id   uint64
	snap *txn.Snapshot
	res  *txnResolved
	undo []func() error
	ops  int64
}

// Insert adds one row to table ordinal tb (must be a write table).
func (ft *FastTxn) Insert(tb int, values []types.Datum) error {
	_, undo, err := ft.db.insertRowLocked(ft.res.tables[tb].rel, values, ft.id, ft.prof)
	if err != nil {
		return err
	}
	ft.undo = append(ft.undo, undo)
	ft.ops++
	return nil
}

// UpdateRow replaces the row version at tid in table ordinal tb.
func (ft *FastTxn) UpdateRow(tb int, tid heap.TID, oldValues, newValues []types.Datum) error {
	undo, err := ft.db.applyUpdateLocked(ft.res.tables[tb].rel, tid, oldValues, newValues, ft.id, ft.prof)
	if err != nil {
		return err
	}
	ft.undo = append(ft.undo, undo)
	ft.ops++
	return nil
}

// DeleteRow stamps the row version at tid in table ordinal tb deleted.
func (ft *FastTxn) DeleteRow(tb int, tid heap.TID) error {
	undo, err := ft.db.deleteRowLocked(ft.res.tables[tb].rel, tid, ft.id, ft.prof)
	if err != nil {
		return err
	}
	ft.undo = append(ft.undo, undo)
	ft.ops++
	return nil
}

// fetch reads and deforms one visible tuple version from table ordinal
// tb through its baked deform routine.
func (ft *FastTxn) fetch(tb int, tid heap.TID) (expr.Row, bool, error) {
	t := &ft.res.tables[tb]
	tup, release, ok, err := t.rel.heap.Get(tid, ft.snap, ft.prof)
	if err != nil || !ok {
		return nil, false, err
	}
	defer release()
	values := make([]types.Datum, len(t.rel.rel.Attrs))
	t.acc.deform(tup, values, len(values), ft.prof)
	return exec.CloneRow(values), true, nil
}

// collectPrefix gathers TIDs under prefix. No latch is taken: the fused
// latch plan already holds the owning table's latch.
func (ft *FastTxn) collectPrefix(ix int, prefix btree.Key) []heap.TID {
	var tids []heap.TID
	ft.res.indexes[ix].ix.Tree.AscendPrefix(prefix, ft.prof, func(_ btree.Key, tid heap.TID) bool {
		tids = append(tids, tid)
		return true
	})
	return tids
}

// GetByIndex fetches the visible row whose key prefix equals key from
// index ordinal ix.
func (ft *FastTxn) GetByIndex(ix int, key []types.Datum) (expr.Row, heap.TID, bool, error) {
	ft.ops++
	tbl := ft.res.indexes[ix].tbl
	for _, tid := range ft.collectPrefix(ix, btree.Key(key)) {
		row, ok, err := ft.fetch(tbl, tid)
		if err != nil {
			return nil, heap.TID{}, false, err
		}
		if ok {
			return row, tid, true, nil
		}
	}
	return nil, heap.TID{}, false, nil
}

// ScanIndexPrefix visits every visible row under prefix in key order;
// fn returning false stops the scan. Positions are collected before fn
// runs, so fn may modify the same table.
func (ft *FastTxn) ScanIndexPrefix(ix int, prefix []types.Datum, fn func(row expr.Row, tid heap.TID) bool) error {
	ft.ops++
	tbl := ft.res.indexes[ix].tbl
	for _, tid := range ft.collectPrefix(ix, btree.Key(prefix)) {
		row, ok, err := ft.fetch(tbl, tid)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if !fn(row, tid) {
			return nil
		}
	}
	return nil
}

// ScanIndexRange visits visible rows with lo <= key <= hi (prefix
// semantics on both bounds).
func (ft *FastTxn) ScanIndexRange(ix int, lo, hi []types.Datum, fn func(row expr.Row, tid heap.TID) bool) error {
	ft.ops++
	in := ft.res.indexes[ix]
	var tids []heap.TID
	in.ix.Tree.AscendRange(btree.Key(lo), btree.Key(hi), ft.prof, func(_ btree.Key, tid heap.TID) bool {
		tids = append(tids, tid)
		return true
	})
	for _, tid := range tids {
		row, ok, err := ft.fetch(in.tbl, tid)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if !fn(row, tid) {
			return nil
		}
	}
	return nil
}

// LastByIndexPrefix returns the visible row with the greatest key under
// prefix.
func (ft *FastTxn) LastByIndexPrefix(ix int, prefix []types.Datum) (expr.Row, heap.TID, bool, error) {
	ft.ops++
	tbl := ft.res.indexes[ix].tbl
	tids := ft.collectPrefix(ix, btree.Key(prefix))
	for i := len(tids) - 1; i >= 0; i-- {
		row, ok, err := ft.fetch(tbl, tids[i])
		if err != nil {
			return nil, heap.TID{}, false, err
		}
		if ok {
			return row, tids[i], true, nil
		}
	}
	return nil, heap.TID{}, false, nil
}
