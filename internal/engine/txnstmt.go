package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"microspec/internal/catalog"
	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/plan"
	"microspec/internal/sql"
	"microspec/internal/storage/heap"
	"microspec/internal/txn"
	"microspec/internal/types"
)

// This file implements server-side named transactions: PREPARE
// TRANSACTION name AS BEGIN; stmt; ...; COMMIT compiled into a
// transaction bee (see txnbee.go). The per-statement plans are stitched
// into one fused program at prepare time — INSERT value expressions and
// UPDATE/DELETE predicates converted once against their relation,
// SELECTs planned through the regular planner (index paths included)
// with their scan latches stripped, since the fused latch plan already
// holds every table's latch — and every statement reads the same
// parameter-slot array, so EXECUTE TRANSACTION binds once and runs the
// whole unit under one latch acquisition and one WAL commit record.
//
// Invalidation follows prepared statements: ddlGen drift rebuilds the
// fused program, dataGen drift resets the cached SELECT plans'
// cross-run caches, and a panic quarantines the bee — the next Exec
// (and the failed one's retry) runs the body statement-at-a-time, each
// statement as its own auto-commit transaction, which is exactly the
// path the client would have used without the bee.

const (
	opInsert = iota
	opUpdate
	opDelete
	opSelect
)

// txnOp is one fused statement, compiled against pre-resolved state.
type txnOp struct {
	kind int
	tbl  int // table ordinal in the TxnSpec (DML ops)

	// opInsert
	colIdx []int
	rows   [][]sql.Expr

	// opUpdate / opDelete
	where    expr.Expr
	setExprs []expr.Expr
	setCols  []int

	// opSelect
	planned *plan.Planned
}

// TxnStmt is a prepared named transaction. Like Stmt, a TxnStmt
// serializes its own executions (the slot array is shared with the
// fused program); different TxnStmts execute concurrently.
type TxnStmt struct {
	db      *DB
	name    string
	text    string
	ast     *sql.PrepareTxn
	nParams int
	execs   atomic.Int64

	mu      sync.Mutex
	closed  bool
	slots   *expr.ParamSlots
	pl      plan.Planner // private copy: Params points at slots, latches stripped
	ct      *CompiledTxn
	prog    []txnOp
	ddlGen  uint64
	dataGen uint64
}

// PrepareTxn parses PREPARE TRANSACTION text and compiles the fused
// unit eagerly — latch plan, index paths, parameter slots.
func (db *DB) PrepareTxn(text string) (*TxnStmt, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	pt, ok := stmt.(*sql.PrepareTxn)
	if !ok {
		return nil, fmt.Errorf("engine: not a PREPARE TRANSACTION statement")
	}
	return db.PrepareTxnAST(pt, text)
}

// PrepareTxnAST compiles an already-parsed PREPARE TRANSACTION unit.
func (db *DB) PrepareTxnAST(pt *sql.PrepareTxn, text string) (*TxnStmt, error) {
	if db.recovering.Load() {
		return nil, ErrRecovering
	}
	ts := &TxnStmt{db: db, name: pt.Name, text: text, ast: pt, nParams: sql.MaxParam(pt)}
	ts.slots = &expr.ParamSlots{Vals: make([]types.Datum, ts.nParams)}
	for i := range ts.slots.Vals {
		ts.slots.Vals[i] = types.Null
	}
	db.mu.RLock()
	err := ts.compileLocked()
	db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	db.obs.prepares.Inc()
	return ts, nil
}

// Name returns the transaction's name (the EXECUTE TRANSACTION handle).
func (ts *TxnStmt) Name() string { return ts.name }

// NumParams returns how many $n placeholders the unit has.
func (ts *TxnStmt) NumParams() int { return ts.nParams }

// Executions returns how many times the unit has run (fused or fallen
// back).
func (ts *TxnStmt) Executions() int64 { return ts.execs.Load() }

// Close releases the statement.
func (ts *TxnStmt) Close() {
	ts.mu.Lock()
	ts.closed = true
	ts.prog = nil
	ts.mu.Unlock()
}

// compileLocked builds the fused program: the TxnSpec (write tables,
// read tables, probed indexes), the CompiledTxn latch plan, and the
// per-statement ops. Caller holds db.mu (read suffices) and ts.mu when
// recompiling from Exec.
func (ts *TxnStmt) compileLocked() error {
	db := ts.db
	spec := TxnSpec{Name: ts.name}
	ord := map[string]int{}
	addWrite := func(name string) int {
		if i, ok := ord[name]; ok {
			return i
		}
		i := len(spec.Writes)
		ord[name] = i
		spec.Writes = append(spec.Writes, name)
		return i
	}
	var readNames []string
	seenRead := map[string]bool{}
	for _, st := range ts.ast.Stmts {
		switch s := st.(type) {
		case *sql.Insert:
			addWrite(s.Table)
		case *sql.Update:
			addWrite(s.Table)
		case *sql.Delete:
			addWrite(s.Table)
		case *sql.Select:
			collectBaseTables(s, func(name string) {
				if !seenRead[name] {
					seenRead[name] = true
					readNames = append(readNames, name)
				}
			})
		}
	}
	for _, name := range readNames {
		if _, isWrite := ord[name]; isWrite {
			continue
		}
		// Skip names that are not relations (CTE references resolve
		// inside their own SELECT plan).
		if _, err := db.cat.Lookup(name); err != nil {
			continue
		}
		spec.Reads = append(spec.Reads, name)
	}

	res, err := db.resolveTxn(spec)
	if err != nil {
		return err
	}

	// The fused planner copy: slots bound, scan latches stripped (the
	// latch plan already holds them — an inner IndexScan re-acquiring the
	// same RWMutex would self-deadlock), serial execution (the unit runs
	// under held latches; fan-out belongs to OLAP queries).
	ts.pl = *db.planner
	ts.pl.Params = ts.slots
	ts.pl.ParamTypes = make([]types.T, ts.nParams)
	ts.pl.Workers = 1
	latched := make(map[*catalog.Relation]bool, len(res.tables))
	for _, t := range res.tables {
		latched[t.rel.rel] = true
	}
	baseIndexes := db.planner.IndexesFor
	ts.pl.IndexesFor = func(rel *catalog.Relation) []plan.IndexMeta {
		ims := baseIndexes(rel)
		if !latched[rel] {
			return ims
		}
		out := make([]plan.IndexMeta, len(ims))
		for i, im := range ims {
			im.Latch = nil
			out[i] = im
		}
		return out
	}

	prog := make([]txnOp, 0, len(ts.ast.Stmts))
	for _, st := range ts.ast.Stmts {
		switch s := st.(type) {
		case *sql.Insert:
			ti := ord[s.Table]
			colIdx, err := insertColumnMap(res.tables[ti].rel.rel, s.Cols)
			if err != nil {
				return err
			}
			for _, row := range s.Rows {
				if len(row) != len(colIdx) {
					return fmt.Errorf("engine: INSERT has %d values for %d columns", len(row), len(colIdx))
				}
			}
			prog = append(prog, txnOp{kind: opInsert, tbl: ti, colIdx: colIdx, rows: s.Rows})
		case *sql.Update:
			ti := ord[s.Table]
			where, setExprs, setCols, err := ts.compileUpdateOp(res.tables[ti].rel.rel, s)
			if err != nil {
				return err
			}
			prog = append(prog, txnOp{kind: opUpdate, tbl: ti, where: where, setExprs: setExprs, setCols: setCols})
		case *sql.Delete:
			ti := ord[s.Table]
			var where expr.Expr
			if s.Where != nil {
				where, err = ts.pl.ConvertForRelation(s.Where, res.tables[ti].rel.rel)
				if err != nil {
					return err
				}
			}
			prog = append(prog, txnOp{kind: opDelete, tbl: ti, where: where})
		case *sql.Select:
			planned, err := ts.pl.PlanSelect(s)
			if err != nil {
				return err
			}
			prog = append(prog, txnOp{kind: opSelect, planned: planned})
		}
	}

	ct := &CompiledTxn{db: db, spec: spec}
	ct.res.Store(res)
	if err := ct.register(res); err != nil {
		return err
	}
	ts.ct = ct
	ts.prog = prog
	ts.ddlGen = db.ddlGen.Load()
	ts.dataGen = db.dataGen.Load()
	return nil
}

func (ts *TxnStmt) compileUpdateOp(rel *catalog.Relation, s *sql.Update) (expr.Expr, []expr.Expr, []int, error) {
	var where expr.Expr
	var err error
	if s.Where != nil {
		where, err = ts.pl.ConvertForRelation(s.Where, rel)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	var setExprs []expr.Expr
	var setCols []int
	for _, sc := range s.Set {
		i := rel.AttrIndex(sc.Col)
		if i < 0 {
			return nil, nil, nil, fmt.Errorf("engine: column %q not in %s", sc.Col, rel.Name)
		}
		e, err := ts.pl.ConvertForRelation(sc.Expr, rel)
		if err != nil {
			return nil, nil, nil, err
		}
		setCols = append(setCols, i)
		setExprs = append(setExprs, e)
	}
	return where, setExprs, setCols, nil
}

// collectBaseTables visits every base-relation name a SELECT references,
// including in joins, subqueries, and CTE bodies.
func collectBaseTables(sel *sql.Select, fn func(string)) {
	if sel == nil {
		return
	}
	cte := map[string]bool{}
	for _, w := range sel.With {
		cte[w.Name] = true
		collectBaseTables(w.Sel, fn)
	}
	var visit func(tr sql.TableRef)
	visit = func(tr sql.TableRef) {
		switch t := tr.(type) {
		case *sql.BaseTable:
			if !cte[t.Name] {
				fn(t.Name)
			}
		case *sql.SubqueryRef:
			collectBaseTables(t.Sel, fn)
		case *sql.JoinRef:
			visit(t.Left)
			visit(t.Right)
		}
	}
	for _, tr := range sel.From {
		visit(tr)
	}
	walkSelectSubqueries(sel, fn)
}

// walkSelectSubqueries finds base tables referenced from scalar/EXISTS/IN
// subqueries in the SELECT's expressions.
func walkSelectSubqueries(sel *sql.Select, fn func(string)) {
	sql.WalkSelectSubqueries(sel, func(sub *sql.Select) {
		collectBaseTables(sub, fn)
	})
}

// ExecTxn runs the named transaction with the given parameters: fused
// when the bee is in service, statement-at-a-time otherwise. It returns
// the last SELECT's result (nil if the body has none) and the total
// number of rows affected by DML.
func (ts *TxnStmt) ExecTxn(params ...types.Datum) (*Result, int64, error) {
	db := ts.db
	start := time.Now()
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.closed {
		return nil, 0, ErrStmtClosed
	}
	if db.recovering.Load() {
		return nil, 0, ErrRecovering
	}
	if err := ts.bind(params); err != nil {
		return nil, 0, err
	}

	var res *Result
	var affected int64
	var err error
	if db.mod.TxnBeeAllowed(ts.name) {
		res, affected, err = ts.runFused()
		var pe *exec.PanicError
		if errors.As(err, &pe) {
			// The bee is quarantined now (Run did it); retry this same
			// execution statement-at-a-time.
			db.obs.txnBeeFallbacks.Inc()
			res, affected, err = ts.runStmtAtATime()
		}
	} else {
		db.obs.txnBeeFallbacks.Inc()
		res, affected, err = ts.runStmtAtATime()
	}
	ts.execs.Add(1)
	rows := affected
	if res != nil {
		rows += int64(len(res.Rows))
	}
	db.obs.observeExecuteStmt(ts.text, time.Since(start), rows, err, 0)
	return res, affected, err
}

// bind writes parameter values into the shared slot array.
func (ts *TxnStmt) bind(params []types.Datum) error {
	if len(params) != ts.nParams {
		return fmt.Errorf("engine: transaction has %d parameters, got %d", ts.nParams, len(params))
	}
	for i, d := range params {
		if i < len(ts.pl.ParamTypes) {
			d = coerceParam(d, ts.pl.ParamTypes[i])
		}
		ts.slots.Vals[i] = d
	}
	return nil
}

// runFused executes the compiled program under the fused latch plan and
// a single commit. Caller holds ts.mu.
func (ts *TxnStmt) runFused() (*Result, int64, error) {
	db := ts.db
	// DDL moved the schema: rebuild the whole fused program (the ops hold
	// relation pointers and plans against the old catalog).
	if db.ddlGen.Load() != ts.ddlGen {
		db.mu.RLock()
		err := ts.compileLocked()
		db.mu.RUnlock()
		if err != nil {
			return nil, 0, err
		}
		db.obs.txnBeeReplans.Inc()
	} else if dg := db.dataGen.Load(); dg != ts.dataGen {
		for _, op := range ts.prog {
			if op.kind == opSelect {
				exec.ResetCaches(op.planned.Root)
			}
		}
		ts.dataGen = dg
		db.obs.preparedResets.Inc()
	}
	var res *Result
	var affected int64
	err := ts.ct.Run(nil, func(ft *FastTxn) error {
		for i := range ts.prog {
			op := &ts.prog[i]
			switch op.kind {
			case opInsert:
				n, err := ts.fusedInsert(ft, op)
				if err != nil {
					return err
				}
				affected += n
			case opUpdate:
				n, err := ts.fusedUpdate(ft, op)
				if err != nil {
					return err
				}
				affected += n
			case opDelete:
				n, err := ts.fusedDelete(ft, op)
				if err != nil {
					return err
				}
				affected += n
			case opSelect:
				rows, err := collectSafe(&exec.Ctx{Context: context.Background(), Expr: expr.Ctx{}, Snap: ft.snap}, op.planned.Root)
				if err != nil {
					return err
				}
				res = &Result{Cols: op.planned.Cols, Rows: rows}
			}
		}
		return nil
	})
	if err != nil {
		ts.dataGen = db.dataGen.Load() // our own rollback bumped it
		return nil, 0, err
	}
	ts.dataGen = db.dataGen.Load()
	return res, affected, nil
}

func (ts *TxnStmt) fusedInsert(ft *FastTxn, op *txnOp) (int64, error) {
	nAttrs := len(ft.res.tables[op.tbl].rel.rel.Attrs)
	var n int64
	for _, rowExprs := range op.rows {
		values := make([]types.Datum, nAttrs)
		for i := range values {
			values[i] = types.Null
		}
		for i, e := range rowExprs {
			d, err := evalConstAST(e, ts.slots)
			if err != nil {
				return n, err
			}
			values[op.colIdx[i]] = d
		}
		if err := ft.Insert(op.tbl, values); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// fusedScanWhere collects the TIDs and deformed rows matching op.where
// under the transaction's own snapshot (two-phase, like
// execUpdateLatched: applying during the scan would revisit moved
// tuples).
func (ft *FastTxn) fusedScanWhere(tbl int, where expr.Expr) ([]heap.TID, []expr.Row, error) {
	t := &ft.res.tables[tbl]
	ctx := &expr.Ctx{Prof: ft.prof}
	values := make([]types.Datum, len(t.rel.rel.Attrs))
	var tids []heap.TID
	var rows []expr.Row
	sc := t.rel.heap.Scan(ft.snap, ft.prof)
	for {
		tid, tup, ok := sc.Next()
		if !ok {
			break
		}
		t.acc.deform(tup, values, len(values), ft.prof)
		if where != nil {
			v := where.Eval(values, ctx)
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		tids = append(tids, tid)
		rows = append(rows, exec.CloneRow(values))
	}
	sc.Close()
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return tids, rows, nil
}

func (ts *TxnStmt) fusedUpdate(ft *FastTxn, op *txnOp) (int64, error) {
	tids, olds, err := ft.fusedScanWhere(op.tbl, op.where)
	if err != nil {
		return 0, err
	}
	ctx := &expr.Ctx{Prof: ft.prof}
	for i, tid := range tids {
		newVal := exec.CloneRow(olds[i])
		for j, e := range op.setExprs {
			newVal[op.setCols[j]] = exec.CloneDatum(e.Eval(olds[i], ctx))
		}
		if err := ft.UpdateRow(op.tbl, tid, olds[i], newVal); err != nil {
			return 0, err
		}
	}
	return int64(len(tids)), nil
}

func (ts *TxnStmt) fusedDelete(ft *FastTxn, op *txnOp) (int64, error) {
	tids, _, err := ft.fusedScanWhere(op.tbl, op.where)
	if err != nil {
		return 0, err
	}
	for _, tid := range tids {
		if err := ft.DeleteRow(op.tbl, tid); err != nil {
			return 0, err
		}
	}
	return int64(len(tids)), nil
}

// runStmtAtATime is the fallback: each body statement runs as its own
// auto-commit transaction through the regular statement paths — exactly
// what a client without the transaction bee would have sent. Caller
// holds ts.mu.
func (ts *TxnStmt) runStmtAtATime() (*Result, int64, error) {
	db := ts.db
	var res *Result
	var affected int64
	for _, st := range ts.ast.Stmts {
		switch s := st.(type) {
		case *sql.Insert:
			n, err := db.execInsert(s, nil, ts.slots)
			if err != nil {
				return nil, affected, err
			}
			affected += n
		case *sql.Update:
			n, err := db.execUpdate(s, nil, ts.slots)
			if err != nil {
				return nil, affected, err
			}
			affected += n
		case *sql.Delete:
			n, err := db.execDelete(s, nil, ts.slots)
			if err != nil {
				return nil, affected, err
			}
			affected += n
		case *sql.Select:
			r, err := db.selectWithSlots(s, ts.slots)
			if err != nil {
				return nil, affected, err
			}
			res = r
		}
	}
	return res, affected, nil
}

// selectWithSlots plans and runs one SELECT with prepared-statement
// slots bound — the statement-at-a-time form of a fused SELECT, with
// its own snapshot.
func (db *DB) selectWithSlots(sel *sql.Select, slots *expr.ParamSlots) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	pl := *db.planner
	pl.Params = slots
	pl.ParamTypes = make([]types.T, len(slots.Vals))
	planned, err := pl.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	snap := db.tm.Snapshot(txn.None)
	defer snap.Release()
	rows, err := collectSafe(&exec.Ctx{Context: context.Background(), Expr: expr.Ctx{}, Snap: snap}, planned.Root)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: planned.Cols, Rows: rows}, nil
}
