// Golden EXPLAIN ANALYZE tests over TPC-H data: one scan-heavy query
// (Q6), one join-heavy query (Q3), and one aggregate query (Q1). Row
// counts are exact — the TPC-H generator is deterministic — and only the
// wall-clock annotations are normalized. An external test package so the
// tpch loader (which imports engine) can be used.
package engine_test

import (
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/tpch"
)

var (
	tpchOnce sync.Once
	tpchDB   *engine.DB
)

func analyzeDB(t *testing.T) *engine.DB {
	t.Helper()
	tpchOnce.Do(func() {
		// Workers is pinned (not GOMAXPROCS) so the golden Gather plans
		// below are machine-independent.
		db, err := tpch.NewDatabase(engine.Config{Routines: core.AllRoutines, Workers: 2}, 0.002)
		if err != nil {
			panic(err)
		}
		tpchDB = db
	})
	return tpchDB
}

var timeRE = regexp.MustCompile(`time=[0-9.]+ms`)

func normalize(s string) string { return timeRE.ReplaceAllString(s, "time=X") }

func TestExplainAnalyzeQ1Aggregate(t *testing.T) {
	db := analyzeDB(t)
	out, res, err := db.ExplainAnalyzeQuery(tpch.Queries()[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("Q1 returned %d rows, want 4", len(res.Rows))
	}
	want := `Sort [{0 false} {1 false}] (actual rows=4 loops=1 time=X)
  Project l_returnflag, l_linestatus, sum_qty, sum_base_price, sum_disc_price, sum_charge, avg_qty, avg_price, avg_disc, count_order (actual rows=4 loops=1 time=X)
    Gather workers=2 (partial-agg groups=2 aggs=[sum(l_quantity), sum(l_extendedprice), sum((l_extendedprice * (1 - l_discount))), sum(((l_extendedprice * (1 - l_discount)) * (1 + l_tax))), avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*)]) [EVA] (actual rows=4 loops=1 time=X)
      Rebatch (actual rows=5845 loops=1 time=X)
        BatchSeqScan lineitem (16 cols) batch=1024 pages=[0,83) filter=(l_shipdate <= (1998-12-01 - interval '0m90d')) [GCL+EVP] (actual rows=5845 batches=83 rows/batch=70.4 loops=1 time=X)
      Rebatch (actual rows=5808 loops=1 time=X)
        BatchSeqScan lineitem (16 cols) batch=1024 pages=[83,166) filter=(l_shipdate <= (1998-12-01 - interval '0m90d')) [GCL+EVP] (actual rows=5808 batches=83 rows/batch=70.0 loops=1 time=X)
`
	if got := normalize(out); got != want {
		t.Fatalf("Q1 explain analyze mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExplainAnalyzeQ3Joins(t *testing.T) {
	db := analyzeDB(t)
	out, res, err := db.ExplainAnalyzeQuery(tpch.Queries()[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("Q3 returned %d rows, want 10", len(res.Rows))
	}
	want := `Limit 10 offset 0 (actual rows=10 loops=1 time=X)
  Sort [{1 true} {2 false}] (actual rows=10 loops=1 time=X)
    Project l_orderkey, revenue, o_orderdate, o_shippriority (actual rows=24 loops=1 time=X)
      HashAgg groups=3 aggs=[sum((l_extendedprice * (1 - l_discount)))] [EVA] (actual rows=24 loops=1 time=X)
        HashJoin inner keys=[17]/[0] [EVJ] (actual rows=65 loops=1 time=X)
          HashJoin inner keys=[0]/[0] [EVJ] (actual rows=329 loops=1 time=X)
            Rebatch (actual rows=5752 loops=1 time=X)
              BatchSeqScan lineitem (16 cols) batch=1024 filter=(l_shipdate > 1995-03-15) [GCL+EVP] (actual rows=5752 batches=166 rows/batch=34.7 loops=1 time=X)
            Rebatch (actual rows=1583 loops=1 time=X)
              BatchSeqScan orders (9 cols) batch=1024 filter=(o_orderdate < 1995-03-15) [GCL+EVP] (actual rows=1583 batches=37 rows/batch=42.8 loops=1 time=X)
          Rebatch (actual rows=59 loops=1 time=X)
            BatchSeqScan customer (8 cols) batch=1024 filter=(c_mktsegment = 'BUILDING') [GCL+EVP] (actual rows=59 batches=6 rows/batch=9.8 loops=1 time=X)
`
	if got := normalize(out); got != want {
		t.Fatalf("Q3 explain analyze mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExplainAnalyzeQ6Scan(t *testing.T) {
	db := analyzeDB(t)
	out, res, err := db.ExplainAnalyzeQuery(tpch.Queries()[6])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("Q6 returned %d rows, want 1", len(res.Rows))
	}
	want := `Project revenue (actual rows=1 loops=1 time=X)
  Gather workers=2 (partial-agg groups=0 aggs=[sum((l_extendedprice * l_discount))]) [EVA] (actual rows=1 loops=1 time=X)
    Rebatch (actual rows=99 loops=1 time=X)
      BatchSeqScan lineitem (16 cols) batch=1024 pages=[0,83) filter=((l_shipdate >= 1994-01-01) AND (l_shipdate < (1994-01-01 + interval '12m0d')) AND ((l_discount >= 0.05) AND (l_discount <= 0.07)) AND (l_quantity < 24)) [GCL+EVP] (actual rows=99 batches=56 rows/batch=1.8 loops=1 time=X)
    Rebatch (actual rows=154 loops=1 time=X)
      BatchSeqScan lineitem (16 cols) batch=1024 pages=[83,166) filter=((l_shipdate >= 1994-01-01) AND (l_shipdate < (1994-01-01 + interval '12m0d')) AND ((l_discount >= 0.05) AND (l_discount <= 0.07)) AND (l_quantity < 24)) [GCL+EVP] (actual rows=154 batches=66 rows/batch=2.3 loops=1 time=X)
`
	if got := normalize(out); got != want {
		t.Fatalf("Q6 explain analyze mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestExplainAnalyzeDoesNotDisturbPlainQuery pins that a plain Query on
// the same statement still returns the same result after an analyzed run
// (Instrument rewrites the plan tree; plans must not be shared).
func TestExplainAnalyzeDoesNotDisturbPlainQuery(t *testing.T) {
	db := analyzeDB(t)
	if _, _, err := db.ExplainAnalyzeQuery(tpch.Queries()[6]); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(tpch.Queries()[6])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("plain Q6 after analyze returned %d rows", len(res.Rows))
	}
}

func TestMetricsSnapshotAndExecNodeCounters(t *testing.T) {
	db := analyzeDB(t)
	if _, _, err := db.ExplainAnalyzeQuery(tpch.Queries()[6]); err != nil {
		t.Fatal(err)
	}
	s := db.MetricsSnapshot()
	if s.Counters["exec.node.BatchSeqScan.rows"] < 11653 {
		t.Fatalf("exec.node.BatchSeqScan.rows = %d, want ≥ 11653", s.Counters["exec.node.BatchSeqScan.rows"])
	}
	if s.Counters["exec.node.BatchSeqScan.batches"] == 0 {
		t.Fatal("exec.node.BatchSeqScan.batches = 0, want > 0 on the batch path")
	}
	if s.Counters["batch_queries"] == 0 || s.Counters["batch.rows"] == 0 {
		t.Fatalf("batch counters empty: queries=%d rows=%d",
			s.Counters["batch_queries"], s.Counters["batch.rows"])
	}
	if s.Counters["bees.calls.gcl"] == 0 {
		t.Fatal("bees.calls.gcl = 0, want > 0 on a bee-enabled engine")
	}
	if s.Counters["buffer.hits"]+s.Counters["buffer.misses"] == 0 {
		t.Fatal("buffer counters empty")
	}
	if s.Gauges["heap.relations"] != 8 {
		t.Fatalf("heap.relations = %d, want 8", s.Gauges["heap.relations"])
	}
	if s.Counters["heap.inserts"] == 0 || s.Counters["index.searches"] == 0 {
		t.Fatalf("storage counters empty: inserts=%d searches=%d",
			s.Counters["heap.inserts"], s.Counters["index.searches"])
	}
	if s.Histograms["query.latency.bee"].Count == 0 {
		t.Fatal("bee latency histogram empty after queries on a bee-enabled engine")
	}
	if !strings.Contains(s.Format(), "bees.calls.gcl") {
		t.Fatal("Format() missing collector-backed counters")
	}
}

func TestSlowQueryLog(t *testing.T) {
	db, err := tpch.NewDatabase(engine.Config{Routines: core.AllRoutines}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	db.SetSlowQueryThreshold(1 * time.Nanosecond) // log everything
	if _, err := db.Query("select count(*) from orders"); err != nil {
		t.Fatal(err)
	}
	slow := db.SlowQueries()
	if len(slow) == 0 {
		t.Fatal("no slow queries logged at 1ns threshold")
	}
	if !strings.Contains(slow[0].SQL, "count(*)") || slow[0].Mode != "bee" || slow[0].Rows != 1 {
		t.Fatalf("slow entry = %+v", slow[0])
	}
	db.SetSlowQueryThreshold(time.Hour)
	if _, err := db.Query("select count(*) from orders"); err != nil {
		t.Fatal(err)
	}
	if got := len(db.SlowQueries()); got != len(slow) {
		t.Fatalf("fast query was logged: %d entries, want %d", got, len(slow))
	}
	db.ResetMetrics()
	if len(db.SlowQueries()) != 0 {
		t.Fatal("ResetMetrics did not clear the slow-query log")
	}
	if db.MetricsSnapshot().Counters["query.count"] != 0 {
		t.Fatal("ResetMetrics did not zero query.count")
	}
}

// TestConcurrentQueriesAndSnapshots hammers the buffer-pool counters,
// bee-call atomics, and the metrics registry from concurrent scans while
// snapshots and analyzed runs race them (run with -race).
func TestConcurrentQueriesAndSnapshots(t *testing.T) {
	db := analyzeDB(t)
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				switch (g + i) % 3 {
				case 0:
					if _, err := db.Query("select count(*) from lineitem where l_quantity < 10"); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, _, err := db.ExplainAnalyzeQuery("select count(*) from orders"); err != nil {
						t.Error(err)
						return
					}
				default:
					_ = db.MetricsSnapshot()
					_ = db.SlowQueries()
				}
			}
		}(g)
	}
	wg.Wait()
}
