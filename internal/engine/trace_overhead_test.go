// Tracing is off by default, so its cost on the hot path must be the
// cost of checking that it is off. This guard bounds the untraced
// per-query overhead — the nil-Active hook calls sprinkled through
// parse/plan/exec plus the per-batch benefit-attribution clock reads —
// at under 2% of a warmed Q6 batch-path execution.
package engine_test

import (
	"context"
	"testing"
	"time"

	"microspec/internal/tpch"
	"microspec/internal/trace"
)

func TestTracingDisabledOverheadGuard(t *testing.T) {
	db := analyzeDB(t)
	q6 := tpch.Queries()[6]
	if db.Tracer().Enabled() {
		t.Fatal("tracer unexpectedly enabled")
	}
	// Warm the caches and bee compilations, then take the median of
	// several runs as the Q6 baseline.
	if _, err := db.Query(q6); err != nil {
		t.Fatal(err)
	}
	const runs = 7
	lats := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := db.Query(q6); err != nil {
			t.Fatal(err)
		}
		lats = append(lats, time.Since(start))
	}
	for i := 1; i < len(lats); i++ { // insertion sort; n=7
		for j := i; j > 0 && lats[j] < lats[j-1]; j-- {
			lats[j], lats[j-1] = lats[j-1], lats[j]
		}
	}
	q6Median := lats[runs/2]

	// Per-call cost of the disabled-tracing hook surface: the context
	// probe and the nil-receiver span methods it returns.
	const hookIters = 1_000_000
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < hookIters; i++ {
		at := trace.FromContext(ctx)
		sp := at.Span("x")
		sp.Child("y").End()
		sp.End()
		_ = at.ID()
	}
	hookCost := time.Since(start) / hookIters

	// Per-pair cost of the benefit-attribution clock reads the batch scan
	// performs around each bee call.
	const clockIters = 1_000_000
	start = time.Now()
	var sink time.Duration
	for i := 0; i < clockIters; i++ {
		t0 := time.Now()
		sink += time.Since(t0)
	}
	clockPair := time.Since(start) / clockIters
	_ = sink

	// Hook sites on one untraced ad-hoc query: wire read/decode spans,
	// parse, plan, exec, commit, and the observe funnel — 16 is a
	// generous ceiling. Clock pairs: the fused Q6 scan takes exactly one
	// timing pair per batch, and batches = lineitem heap pages.
	const hookSites = 16
	h, err := db.HeapOf("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	batches := h.NumPages()
	overhead := time.Duration(hookSites)*hookCost + time.Duration(batches)*clockPair
	limit := q6Median / 50 // 2%
	t.Logf("q6 median=%v  hook=%v/call ×%d  clock=%v/pair ×%d batches  → overhead=%v (limit %v)",
		q6Median, hookCost, hookSites, clockPair, batches, overhead, limit)
	if overhead >= limit {
		t.Fatalf("estimated untraced overhead %v is ≥2%% of Q6 (%v median)", overhead, q6Median)
	}
}
