package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"microspec/internal/core"
	"microspec/internal/exec"
	"microspec/internal/storage/buffer"
	"microspec/internal/storage/disk"
)

// faultDB builds a bee-enabled database over the given page store (nil =
// plain manager) with one multi-page table "ft" of n rows.
func faultDB(t testing.TB, dev disk.Device, n int) *DB {
	t.Helper()
	db := Open(Config{Routines: core.AllRoutines, PoolPages: 256, Workers: 4, Disk: dev})
	mustExec(t, db, `create table ft (
		f_id integer not null,
		f_grp integer not null,
		f_val double not null,
		f_pad char(40) not null,
		primary key (f_id))`)
	for i := 1; i <= n; i++ {
		mustExec(t, db, fmt.Sprintf(
			"insert into ft values (%d, %d, %d.5, 'pad-%d')", i, i%5, i, i))
	}
	return db
}

func TestQueryContextCancelParallelScan(t *testing.T) {
	db := faultDB(t, nil, 4000)
	const q = "select f_grp, sum(f_val) from ft where f_val > 10.0 group by f_grp"
	pl, err := db.ExplainQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pl, "Gather workers=") {
		t.Fatalf("expected a Gather plan, got:\n%s", pl)
	}

	// Baseline: the query works under a live context.
	if _, err := db.QueryContext(context.Background(), q); err != nil {
		t.Fatalf("baseline: %v", err)
	}

	// A cancelled context stops every partition worker mid-scan.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = db.QueryContext(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := db.MetricsSnapshot().Counters["queries_cancelled"]; got < 1 {
		t.Errorf("queries_cancelled = %d, want >= 1", got)
	}
}

func TestQueryContextCancelMidQuery(t *testing.T) {
	db := faultDB(t, nil, 2000)
	// A quadratic self-join: slow enough that the cancel lands mid-query.
	const q = "select count(*) from ft a, ft b where a.f_val < b.f_val"
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(ctx, q)
		errCh <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		// The query may legitimately finish before the cancel on a fast
		// machine; only a wrong error kind is a failure.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled or nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query did not return")
	}
}

func TestStatementTimeout(t *testing.T) {
	db := faultDB(t, nil, 2000)
	db.SetStatementTimeout(time.Millisecond)
	defer db.SetStatementTimeout(0)
	_, err := db.Query("select count(*) from ft a, ft b where a.f_val < b.f_val")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := db.MetricsSnapshot().Counters["queries_timed_out"]; got < 1 {
		t.Errorf("queries_timed_out = %d, want >= 1", got)
	}
}

func TestQuarantineFallbackSerial(t *testing.T) {
	db := faultDB(t, nil, 500)
	db.SetWorkers(1)
	const q = "select f_id from ft where f_grp = 3 order by f_id"
	baseline := mustQuery(t, db, q)

	// Arm the failpoint: every EVP bee invocation panics. The engine must
	// contain the panic, quarantine the plan's bees, and transparently
	// re-run on the generic path with identical results.
	db.Module().InjectBeePanic("query/EVP", "")
	defer db.Module().ClearBeePanic()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("query with panicking bee: %v", err)
	}
	if len(res.Rows) != len(baseline.Rows) {
		t.Fatalf("fallback returned %d rows, baseline %d", len(res.Rows), len(baseline.Rows))
	}
	for i := range res.Rows {
		if res.Rows[i][0].Int64() != baseline.Rows[i][0].Int64() {
			t.Fatalf("row %d: %v != %v", i, res.Rows[i][0], baseline.Rows[i][0])
		}
	}
	st := db.Module().Stats()
	if st.Quarantined < 1 || st.QuarantinedNow < 1 {
		t.Errorf("quarantined=%d now=%d, want >= 1", st.Quarantined, st.QuarantinedNow)
	}
	snap := db.MetricsSnapshot()
	if snap.Counters["bees_quarantined"] < 1 {
		t.Errorf("bees_quarantined metric = %d, want >= 1", snap.Counters["bees_quarantined"])
	}
	if snap.Counters["quarantine_retries"] < 1 {
		t.Errorf("quarantine_retries metric = %d, want >= 1", snap.Counters["quarantine_retries"])
	}

	// Quarantine is visible in the cache listing.
	found := false
	for _, e := range db.Module().CacheEntries() {
		if e.Quarantined {
			found = true
		}
	}
	if !found {
		t.Error("no cache entry marked quarantined")
	}
	if n := db.Module().ClearQuarantine(); n < 1 {
		t.Errorf("ClearQuarantine lifted %d, want >= 1", n)
	}
}

func TestQuarantineFallbackParallelWorkerPanic(t *testing.T) {
	db := faultDB(t, nil, 4000)
	const q = "select f_grp, count(*) from ft where f_val > 10.0 group by f_grp"
	baseline := mustQuery(t, db, q)

	// The panic fires on Gather worker goroutines; the worker recover must
	// contain it (a bare goroutine panic would kill the process).
	db.Module().InjectBeePanic("query/EVP", "")
	defer db.Module().ClearBeePanic()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("parallel query with panicking bee: %v", err)
	}
	if len(res.Rows) != len(baseline.Rows) {
		t.Fatalf("fallback returned %d groups, baseline %d", len(res.Rows), len(baseline.Rows))
	}
	db.Module().ClearQuarantine()
}

func TestPanicWithoutBeesSurfacesError(t *testing.T) {
	db := faultDB(t, nil, 100)
	db.SetWorkers(1)
	// Quarantine-everything first so the retry condition (a newly
	// quarantined bee) cannot hold; the panic must surface as a typed
	// error, not loop or crash.
	db.Module().InjectBeePanic("", "")
	defer db.Module().ClearBeePanic()
	_, err := db.Query("select f_id from ft where f_grp = 3")
	if err == nil {
		// First run retried onto the generic path successfully.
		db.Module().ClearQuarantine()
		return
	}
	var pe *exec.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *exec.PanicError", err)
	}
	db.Module().ClearQuarantine()
}

func TestCorruptPageTypedErrorNotWrongRows(t *testing.T) {
	db := faultDB(t, nil, 500)
	if err := db.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	h, err := db.HeapOf("ft")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := db.Disk().(*disk.Manager)
	if !ok {
		t.Fatalf("disk is %T, want *disk.Manager", db.Disk())
	}
	// Flip a byte inside the stored tuple area of page 0.
	if err := m.CorruptPage(h.File(), 0, 4096, 0x20); err != nil {
		t.Fatal(err)
	}
	_, err = db.Query("select count(*) from ft")
	if err == nil {
		t.Fatal("query over corrupt page must fail, not return rows")
	}
	if !buffer.IsCorrupt(err) {
		t.Fatalf("err = %v, want corrupt-page error", err)
	}
	if got := db.MetricsSnapshot().Counters["checksum_failures"]; got < 1 {
		t.Errorf("checksum_failures = %d, want >= 1", got)
	}
}

func TestTransientDiskFaultInvisibleToQueries(t *testing.T) {
	fd := disk.NewFaulty(disk.NewManager(disk.LatencyModel{}), disk.FaultConfig{Seed: 11})
	db := faultDB(t, fd, 500)
	baseline := mustQuery(t, db, "select count(*) from ft")
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	fd.SetEnabled(true)
	fd.FailNextReads(2)
	res := mustQuery(t, db, "select count(*) from ft")
	if res.Rows[0][0].Int64() != baseline.Rows[0][0].Int64() {
		t.Fatalf("count %v != baseline %v", res.Rows[0][0], baseline.Rows[0][0])
	}
	snap := db.MetricsSnapshot()
	if snap.Counters["disk_read_retries"] < 2 {
		t.Errorf("disk_read_retries = %d, want >= 2", snap.Counters["disk_read_retries"])
	}
	if snap.Counters["disk_faults_injected"] < 2 {
		t.Errorf("disk_faults_injected = %d, want >= 2", snap.Counters["disk_faults_injected"])
	}
}
