package engine

import (
	"microspec/internal/profile"
	"microspec/internal/storage/heap"
	"microspec/internal/types"
)

// This file implements threshold-triggered vacuum: MVCC updates and
// deletes leave dead tuple versions (and their index entries) behind for
// the benefit of concurrent snapshots, and vacuum reclaims them once no
// registered or future snapshot can see them — the horizon computed by
// the transaction manager. The trigger is per table: after a DML commit,
// the table vacuums itself when its stamped-dead count passes
// Config.VacuumEvery. See docs/CONCURRENCY.md for the full policy.

// DefaultVacuumEvery is the dead-version threshold above which a table is
// vacuumed after a DML commit (Config.VacuumEvery = 0 selects it).
const DefaultVacuumEvery = 256

// maybeVacuumLocked vacuums rel if its dead-version count passed the
// configured threshold. Caller holds db.mu (shared) and rel's table latch
// exclusively.
func (db *DB) maybeVacuumLocked(rel relHandle, prof *profile.Counters) {
	if db.vacEvery <= 0 || rel.heap.DeadVersions() < db.vacEvery {
		return
	}
	_, _ = db.vacuumTableLocked(rel, prof)
}

// vacuumTableLocked reclaims rel's dead versions up to the current
// horizon and drops their index entries. Caller holds db.mu (shared) and
// rel's table latch exclusively: the latch keeps DML and index readers
// out, while snapshot scans (which take no table latch) are protected by
// the horizon — vacuum never touches a version a registered snapshot can
// still see — and by the per-page latches, which make vacuum skip any
// page a scanner window is holding.
func (db *DB) vacuumTableLocked(rel relHandle, prof *profile.Counters) (int, error) {
	acc, err := db.accessFor(rel.rel)
	if err != nil {
		return 0, err
	}
	horizon := db.tm.Horizon()
	ixs := db.byRel[rel.rel.ID]
	values := make([]types.Datum, len(rel.rel.Attrs))
	collect := func(tid heap.TID, tup []byte) {
		acc.deform(tup, values, len(values), prof)
		for _, ix := range ixs {
			ix.Tree.Delete(indexKey(values, ix.Cols), tid, prof)
		}
	}
	n, err := rel.heap.Vacuum(horizon, prof, collect)
	db.obs.vacuumRuns.Inc()
	db.obs.vacuumReclaimed.Add(int64(n))
	return n, err
}

// Vacuum reclaims dead versions in every relation and returns the total
// number of versions removed. Tests and the admin plane call it; normal
// operation relies on the per-table threshold trigger.
func (db *DB) Vacuum() (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	total := 0
	for _, rel := range db.cat.Relations() {
		h, ok := db.heaps[rel.ID]
		if !ok {
			continue
		}
		handle := relHandle{rel: rel, heap: h, latch: db.latches[rel.ID]}
		handle.latch.Lock()
		n, err := db.vacuumTableLocked(handle, nil)
		handle.latch.Unlock()
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}
