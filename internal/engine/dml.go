package engine

import (
	"errors"
	"fmt"
	"sync"

	"microspec/internal/catalog"

	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/index/btree"
	"microspec/internal/profile"
	"microspec/internal/sql"
	"microspec/internal/storage/heap"
	"microspec/internal/txn"
	"microspec/internal/types"
)

// This file implements the DML paths. Inserts run through the bee
// module's FormTuple — the SCL bee routine plus tuple-bee resolution when
// enabled, the generic heap_fill_tuple otherwise — which is exactly the
// code path the paper's bulk-loading experiment (Figure 8) measures.
//
// Concurrency: each statement runs as its own transaction under the
// engine lock in *shared* mode plus its table's latch in exclusive mode,
// so statements on different tables proceed in parallel and SELECTs are
// never blocked (they read MVCC snapshots; see docs/CONCURRENCY.md).
// On error the statement's undo log is replayed and the transaction
// aborts — statements are atomic.

// insertRowLocked forms and stores one tuple version stamped with xid and
// adds one index entry per index. Caller holds the table latch
// exclusively. The returned undo removes the index entries and stamps the
// version dead (rollback makes it invisible even to latest-committed
// readers).
func (db *DB) insertRowLocked(rel relHandle, values []types.Datum, xid uint64, prof *profile.Counters) (heap.TID, func() error, error) {
	acc, err := db.accessFor(rel.rel)
	if err != nil {
		return heap.TID{}, nil, err
	}
	tup, err := acc.form(values, prof)
	if err != nil {
		return heap.TID{}, nil, err
	}
	db.advisorObserveRow(rel.rel, values)
	// Visibility-aware unique checks come first, before any effect that
	// would need undoing. The B+tree cannot enforce uniqueness itself: it
	// keeps one entry per version, and dead versions of a key linger until
	// vacuum.
	for _, ix := range db.byRel[rel.rel.ID] {
		if !ix.Tree.Unique {
			continue
		}
		if err := db.uniqueConflict(rel.heap, ix, indexKey(values, ix.Cols), xid, prof); err != nil {
			return heap.TID{}, nil, err
		}
	}
	tid, err := rel.heap.Insert(tup, xid, prof)
	if err != nil {
		return heap.TID{}, nil, err
	}
	keys := make([]btree.Key, len(db.byRel[rel.rel.ID]))
	for i, ix := range db.byRel[rel.rel.ID] {
		key := indexKey(values, ix.Cols)
		// Own the key datums: values may alias caller buffers.
		for j := range key {
			key[j] = exec.CloneDatum(key[j])
		}
		ix.Tree.InsertVersion(key, tid, prof)
		keys[i] = key
	}
	ixs := db.byRel[rel.rel.ID]
	undo := func() error {
		for i, ix := range ixs {
			ix.Tree.Delete(keys[i], tid, nil)
		}
		return rel.heap.MarkDeleted(tid, xid, nil)
	}
	return tid, undo, nil
}

// uniqueConflict reports whether inserting key into ix would violate
// uniqueness from xid's point of view. The check is deliberately dirty:
// an uncommitted insert of the same key by a concurrent transaction is a
// write-write conflict (first-updater-wins — we cannot assume it will
// abort), a committed live version is a duplicate, and versions that are
// aborted, deleted-by-a-committed-transaction, or deleted by xid itself
// do not count.
func (db *DB) uniqueConflict(h *heap.Heap, ix *Index, key btree.Key, xid uint64, prof *profile.Counters) error {
	for _, tid := range ix.Tree.SearchAll(key, prof) {
		xmin, xmax, present, err := h.Stamps(tid)
		if err != nil {
			return err
		}
		if !present {
			continue // vacuumed since the entry was collected
		}
		switch db.tm.Status(xmin) {
		case txn.StatusAborted:
			continue
		case txn.StatusInProgress:
			if xmin != xid {
				return &txn.ConflictError{Mine: xid, Theirs: xmin}
			}
		}
		if xmax == xid {
			continue // deleted earlier in this transaction
		}
		if xmax != txn.None {
			switch db.tm.Status(xmax) {
			case txn.StatusCommitted:
				continue // deleted for good
			case txn.StatusAborted:
				// Deleter rolled back: the version is live.
			case txn.StatusInProgress:
				// A concurrent deleter might abort; treat the version as
				// live and fail — first-updater-wins keeps this rare.
			}
		}
		return fmt.Errorf("index %s: duplicate key %v", ix.Name, key)
	}
	return nil
}

// relHandle pairs a relation with its heap and table latch.
type relHandle struct {
	rel   *catalog.Relation
	heap  *heap.Heap
	latch *sync.RWMutex
}

func (db *DB) handleFor(name string) (relHandle, error) {
	rel, err := db.cat.Lookup(name)
	if err != nil {
		return relHandle{}, err
	}
	h, ok := db.heaps[rel.ID]
	if !ok {
		return relHandle{}, fmt.Errorf("engine: relation %s has no heap", name)
	}
	return relHandle{rel: rel, heap: h, latch: db.latches[rel.ID]}, nil
}

// stmtCommit finishes an auto-commit DML statement: append the commit
// record (on a durable database), commit the statement transaction, bump
// the data generation, and vacuum the table if its dead versions passed
// the threshold. Caller still holds the table latch; the returned LSN is
// what the caller must pass to waitDurable AFTER releasing it, so
// concurrent committers can share one group-commit sync. If the commit
// record cannot be appended (the log writer was killed), the transaction
// aborts instead — its versions stay stamped with the aborted xid, which
// keeps them invisible until vacuum reclaims them.
func (db *DB) stmtCommit(rel relHandle, xid uint64, prof *profile.Counters) (uint64, error) {
	lsn, err := db.logCommit(xid)
	if err != nil {
		db.tm.Abort(xid)
		return 0, err
	}
	db.tm.Commit(xid)
	db.dataGen.Add(1)
	db.maybeVacuumLocked(rel, prof)
	return lsn, nil
}

// stmtAbort rolls back an auto-commit DML statement: replay the undo log
// newest-first, then abort the transaction. Caller still holds the table
// latch. Conflict errors are counted here — the single funnel every
// losing statement passes through.
func (db *DB) stmtAbort(undos []func() error, xid uint64, cause error) {
	for i := len(undos) - 1; i >= 0; i-- {
		_ = undos[i]()
	}
	db.logAbort(xid)
	db.tm.Abort(xid)
	if isConflict(cause) {
		db.obs.txnConflicts.Inc()
	}
}

// isConflict reports whether err is (or wraps) a write-write conflict.
func isConflict(err error) bool {
	return err != nil && errors.Is(err, txn.ErrWriteConflict)
}

// execInsert handles INSERT INTO ... VALUES. slots carries bound
// prepared-statement parameters (nil for ad-hoc statements). Like every
// auto-commit DML wrapper, the durability wait runs after the latched
// body returns — once the table latch and db.mu are released — so
// concurrent statements amortize their commit-record syncs (group
// commit); prefix durability makes visible-before-durable safe (see
// docs/DURABILITY.md).
func (db *DB) execInsert(s *sql.Insert, prof *profile.Counters, slots *expr.ParamSlots) (int64, error) {
	n, lsn, err := db.execInsertLatched(s, prof, slots)
	if err != nil {
		return n, err
	}
	return n, db.waitDurable(lsn)
}

func (db *DB) execInsertLatched(s *sql.Insert, prof *profile.Counters, slots *expr.ParamSlots) (int64, uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, err := db.handleFor(s.Table)
	if err != nil {
		return 0, 0, err
	}
	colIdx, err := insertColumnMap(rel.rel, s.Cols)
	if err != nil {
		return 0, 0, err
	}
	rel.latch.Lock()
	defer rel.latch.Unlock()
	xid := db.tm.Begin()
	var n int64
	var undos []func() error
	for _, rowExprs := range s.Rows {
		if len(rowExprs) != len(colIdx) {
			err = fmt.Errorf("engine: INSERT has %d values for %d columns", len(rowExprs), len(colIdx))
			db.stmtAbort(undos, xid, err)
			return 0, 0, err
		}
		values := make([]types.Datum, len(rel.rel.Attrs))
		for i := range values {
			values[i] = types.Null
		}
		for i, e := range rowExprs {
			d, verr := evalConstAST(e, slots)
			if verr != nil {
				db.stmtAbort(undos, xid, verr)
				return 0, 0, verr
			}
			values[colIdx[i]] = d
		}
		_, undo, ierr := db.insertRowLocked(rel, values, xid, prof)
		if ierr != nil {
			db.stmtAbort(undos, xid, ierr)
			return 0, 0, ierr
		}
		undos = append(undos, undo)
		n++
	}
	lsn, err := db.stmtCommit(rel, xid, prof)
	if err != nil {
		return 0, 0, err
	}
	return n, lsn, nil
}

func insertColumnMap(rel *catalog.Relation, cols []string) ([]int, error) {
	if len(cols) == 0 {
		idx := make([]int, len(rel.Attrs))
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	}
	idx := make([]int, len(cols))
	for i, name := range cols {
		j := rel.AttrIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("engine: column %q not in %s", name, rel.Name)
		}
		idx[i] = j
	}
	return idx, nil
}

// evalConstAST evaluates a constant-only AST expression (INSERT values).
// slots supplies $n parameter values for prepared statements; with slots
// nil a placeholder is an error.
func evalConstAST(e sql.Expr, slots *expr.ParamSlots) (types.Datum, error) {
	switch n := e.(type) {
	case *sql.NumLit:
		c, err := parseNum(n)
		return c, err
	case *sql.StrLit:
		return types.NewString(n.Val), nil
	case *sql.NullLit:
		return types.Null, nil
	case *sql.BoolLit:
		return types.NewBool(n.Val), nil
	case *sql.DateLit:
		d, err := types.ParseDate(n.Val)
		if err != nil {
			return types.Null, err
		}
		return types.NewDate(d), nil
	case *sql.Placeholder:
		if slots == nil {
			return types.Null, fmt.Errorf("engine: parameter $%d outside a prepared statement", n.Idx)
		}
		if n.Idx < 1 || n.Idx > len(slots.Vals) {
			return types.Null, fmt.Errorf("engine: parameter $%d out of range (statement has %d)", n.Idx, len(slots.Vals))
		}
		return slots.Vals[n.Idx-1], nil
	case *sql.UnOp:
		if n.Op == "-" {
			d, err := evalConstAST(n.Kid, slots)
			if err != nil {
				return types.Null, err
			}
			if d.Kind() == types.KindFloat64 {
				return types.NewFloat64(-d.Float64()), nil
			}
			return types.NewInt64(-d.Int64()), nil
		}
	case *sql.BinOp:
		l, err := evalConstAST(n.L, slots)
		if err != nil {
			return types.Null, err
		}
		r, err := evalConstAST(n.R, slots)
		if err != nil {
			return types.Null, err
		}
		switch n.Op {
		case "+":
			return expr.ApplyArith(expr.Add, l, r), nil
		case "-":
			return expr.ApplyArith(expr.Sub, l, r), nil
		case "*":
			return expr.ApplyArith(expr.Mul, l, r), nil
		case "/":
			return expr.ApplyArith(expr.Div, l, r), nil
		}
	}
	return types.Null, fmt.Errorf("engine: INSERT values must be constants")
}

func parseNum(n *sql.NumLit) (types.Datum, error) {
	if n.IsFloat {
		var f float64
		if _, err := fmt.Sscanf(n.Text, "%g", &f); err != nil {
			return types.Null, fmt.Errorf("engine: bad number %q", n.Text)
		}
		return types.NewFloat64(f), nil
	}
	var v int64
	if _, err := fmt.Sscanf(n.Text, "%d", &v); err != nil {
		return types.Null, fmt.Errorf("engine: bad number %q", n.Text)
	}
	return types.NewInt64(v), nil
}

// execUpdate handles UPDATE ... SET ... WHERE by scanning the relation
// under the statement's snapshot. The durability wait runs after the
// latched body releases the table latch (see execInsert).
func (db *DB) execUpdate(s *sql.Update, prof *profile.Counters, slots *expr.ParamSlots) (int64, error) {
	n, lsn, err := db.execUpdateLatched(s, prof, slots)
	if err != nil {
		return n, err
	}
	return n, db.waitDurable(lsn)
}

func (db *DB) execUpdateLatched(s *sql.Update, prof *profile.Counters, slots *expr.ParamSlots) (int64, uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, err := db.handleFor(s.Table)
	if err != nil {
		return 0, 0, err
	}
	where, setExprs, setCols, err := db.compileUpdate(rel.rel, s, slots)
	if err != nil {
		return 0, 0, err
	}
	acc, err := db.accessFor(rel.rel)
	if err != nil {
		return 0, 0, err
	}
	deform := acc.deform

	rel.latch.Lock()
	defer rel.latch.Unlock()
	xid := db.tm.Begin()
	snap := db.tm.Snapshot(xid)
	defer snap.Release()

	// Two phases: collect matching TIDs and new value rows, then apply
	// (updating during the scan would revisit moved tuples).
	type pending struct {
		tid    heap.TID
		oldVal []types.Datum
		newVal []types.Datum
	}
	var todo []pending
	ctx := &exec.Ctx{Expr: expr.Ctx{Prof: prof}}
	values := make([]types.Datum, len(rel.rel.Attrs))
	sc := rel.heap.Scan(snap, prof)
	for {
		tid, tup, ok := sc.Next()
		if !ok {
			break
		}
		deform(tup, values, len(values), prof)
		if where != nil {
			v := where.Eval(values, &ctx.Expr)
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		old := exec.CloneRow(values)
		newVal := exec.CloneRow(values)
		for i, e := range setExprs {
			newVal[setCols[i]] = exec.CloneDatum(e.Eval(old, &ctx.Expr))
		}
		todo = append(todo, pending{tid: tid, oldVal: old, newVal: newVal})
	}
	sc.Close()
	if err := sc.Err(); err != nil {
		db.stmtAbort(nil, xid, err)
		return 0, 0, err
	}

	var undos []func() error
	for _, pd := range todo {
		undo, err := db.applyUpdateLocked(rel, pd.tid, pd.oldVal, pd.newVal, xid, prof)
		if err != nil {
			db.stmtAbort(undos, xid, err)
			return 0, 0, err
		}
		undos = append(undos, undo)
	}
	lsn, err := db.stmtCommit(rel, xid, prof)
	if err != nil {
		return 0, 0, err
	}
	return int64(len(todo)), lsn, nil
}

func (db *DB) compileUpdate(rel *catalog.Relation, s *sql.Update, slots *expr.ParamSlots) (expr.Expr, []expr.Expr, []int, error) {
	conv := db.astConverter(rel, slots)
	var where expr.Expr
	var err error
	if s.Where != nil {
		where, err = conv(s.Where)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	var setExprs []expr.Expr
	var setCols []int
	for _, sc := range s.Set {
		i := rel.AttrIndex(sc.Col)
		if i < 0 {
			return nil, nil, nil, fmt.Errorf("engine: column %q not in %s", sc.Col, rel.Name)
		}
		e, err := conv(sc.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		setCols = append(setCols, i)
		setExprs = append(setExprs, e)
	}
	return where, setExprs, setCols, nil
}

// applyUpdateLocked performs one MVCC update — stamp the old version
// deleted, insert the new version, index the new version — and returns
// the undo that reverses all three. The old version's index entries are
// deliberately KEPT: concurrent snapshots older than this transaction
// still need to find the old version through the index; vacuum removes
// the entries when it reclaims the version. A *txn.ConflictError from the
// delete stamp means another transaction updated the row first
// (first-updater-wins); the caller must abort.
func (db *DB) applyUpdateLocked(rel relHandle, tid heap.TID, oldVal, newVal []types.Datum, xid uint64, prof *profile.Counters) (func() error, error) {
	acc, err := db.accessFor(rel.rel)
	if err != nil {
		return nil, err
	}
	tup, err := acc.form(newVal, prof)
	if err != nil {
		return nil, err
	}
	db.advisorObserveRow(rel.rel, newVal)
	if err := rel.heap.MarkDeleted(tid, xid, prof); err != nil {
		return nil, err
	}
	// Unique checks on key-changing indexes, after the old version is
	// stamped (its xmax == xid exempts it from its own check).
	for _, ix := range db.byRel[rel.rel.ID] {
		if !ix.Tree.Unique {
			continue
		}
		oldKey := indexKey(oldVal, ix.Cols)
		newKey := indexKey(newVal, ix.Cols)
		if btreeCompare(oldKey, newKey) == 0 {
			continue
		}
		if err := db.uniqueConflict(rel.heap, ix, newKey, xid, prof); err != nil {
			_ = rel.heap.UnmarkDeleted(tid, xid)
			return nil, err
		}
	}
	newTID, err := rel.heap.Insert(tup, xid, prof)
	if err != nil {
		_ = rel.heap.UnmarkDeleted(tid, xid)
		return nil, err
	}
	ixs := db.byRel[rel.rel.ID]
	newKeys := make([]btree.Key, len(ixs))
	for i, ix := range ixs {
		key := indexKey(newVal, ix.Cols)
		for j := range key {
			key[j] = exec.CloneDatum(key[j])
		}
		ix.Tree.InsertVersion(key, newTID, prof)
		newKeys[i] = key
	}
	undo := func() error {
		for i, ix := range ixs {
			ix.Tree.Delete(newKeys[i], newTID, nil)
		}
		_ = rel.heap.MarkDeleted(newTID, xid, nil)
		return rel.heap.UnmarkDeleted(tid, xid)
	}
	return undo, nil
}

func btreeCompare(a, b []types.Datum) int {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// execDelete handles DELETE FROM ... WHERE by scanning the relation
// under the statement's snapshot. The durability wait runs after the
// latched body releases the table latch (see execInsert).
func (db *DB) execDelete(s *sql.Delete, prof *profile.Counters, slots *expr.ParamSlots) (int64, error) {
	n, lsn, err := db.execDeleteLatched(s, prof, slots)
	if err != nil {
		return n, err
	}
	return n, db.waitDurable(lsn)
}

func (db *DB) execDeleteLatched(s *sql.Delete, prof *profile.Counters, slots *expr.ParamSlots) (int64, uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rel, err := db.handleFor(s.Table)
	if err != nil {
		return 0, 0, err
	}
	conv := db.astConverter(rel.rel, slots)
	var where expr.Expr
	if s.Where != nil {
		where, err = conv(s.Where)
		if err != nil {
			return 0, 0, err
		}
	}
	acc, err := db.accessFor(rel.rel)
	if err != nil {
		return 0, 0, err
	}
	deform := acc.deform

	rel.latch.Lock()
	defer rel.latch.Unlock()
	xid := db.tm.Begin()
	snap := db.tm.Snapshot(xid)
	defer snap.Release()

	var victims []heap.TID
	ctx := &expr.Ctx{Prof: prof}
	values := make([]types.Datum, len(rel.rel.Attrs))
	sc := rel.heap.Scan(snap, prof)
	for {
		tid, tup, ok := sc.Next()
		if !ok {
			break
		}
		deform(tup, values, len(values), prof)
		if where != nil {
			v := where.Eval(values, ctx)
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		victims = append(victims, tid)
	}
	sc.Close()
	if err := sc.Err(); err != nil {
		db.stmtAbort(nil, xid, err)
		return 0, 0, err
	}
	var undos []func() error
	for _, tid := range victims {
		undo, err := db.deleteRowLocked(rel, tid, xid, prof)
		if err != nil {
			db.stmtAbort(undos, xid, err)
			return 0, 0, err
		}
		undos = append(undos, undo)
	}
	lsn, err := db.stmtCommit(rel, xid, prof)
	if err != nil {
		return 0, 0, err
	}
	return int64(len(victims)), lsn, nil
}

// deleteRowLocked stamps one version deleted. Index entries stay: older
// snapshots still resolve the version through them, and vacuum removes
// them with the version itself. The undo clears the stamp.
func (db *DB) deleteRowLocked(rel relHandle, tid heap.TID, xid uint64, prof *profile.Counters) (func() error, error) {
	if err := rel.heap.MarkDeleted(tid, xid, prof); err != nil {
		return nil, err
	}
	undo := func() error { return rel.heap.UnmarkDeleted(tid, xid) }
	return undo, nil
}

// astConverter builds a converter that resolves identifiers against a
// single relation's attributes (for UPDATE/DELETE WHERE clauses). slots,
// when non-nil, lets the converted expression read $n prepared-statement
// parameters; the planner copy keeps the shared planner untouched.
func (db *DB) astConverter(rel *catalog.Relation, slots *expr.ParamSlots) func(sql.Expr) (expr.Expr, error) {
	pl := *db.planner
	if slots != nil {
		pl.Params = slots
		pl.ParamTypes = make([]types.T, len(slots.Vals))
	}
	return func(e sql.Expr) (expr.Expr, error) {
		planned, err := pl.ConvertForRelation(e, rel)
		return planned, err
	}
}
