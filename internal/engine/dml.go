package engine

import (
	"fmt"

	"microspec/internal/catalog"

	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/profile"
	"microspec/internal/sql"
	"microspec/internal/storage/heap"
	"microspec/internal/types"
)

// This file implements the DML paths. Inserts run through the bee
// module's FormTuple — the SCL bee routine plus tuple-bee resolution when
// enabled, the generic heap_fill_tuple otherwise — which is exactly the
// code path the paper's bulk-loading experiment (Figure 8) measures.

// insertRowLocked forms and stores one tuple and maintains indexes.
// Caller holds db.mu. The returned undo reverses heap and index effects.
func (db *DB) insertRowLocked(rel relHandle, values []types.Datum, prof *profile.Counters) (heap.TID, func() error, error) {
	acc, err := db.accessFor(rel.rel)
	if err != nil {
		return heap.TID{}, nil, err
	}
	tup, err := acc.form(values, prof)
	if err != nil {
		return heap.TID{}, nil, err
	}
	tid, err := rel.heap.Insert(tup, prof)
	if err != nil {
		return heap.TID{}, nil, err
	}
	db.dataGen.Add(1)
	var insertedKeys []struct {
		ix  *Index
		key []types.Datum
	}
	for _, ix := range db.byRel[rel.rel.ID] {
		key := indexKey(values, ix.Cols)
		// Own the key datums: values may alias caller buffers.
		for i := range key {
			key[i] = exec.CloneDatum(key[i])
		}
		if err := ix.Tree.Insert(key, tid, prof); err != nil {
			// Roll back what we did so far.
			for _, done := range insertedKeys {
				done.ix.Tree.Delete(done.key, tid, nil)
			}
			if undoDel, derr := rel.heap.Delete(tid, nil); derr == nil {
				_ = undoDel
			}
			return heap.TID{}, nil, err
		}
		insertedKeys = append(insertedKeys, struct {
			ix  *Index
			key []types.Datum
		}{ix, key})
	}
	undo := func() error {
		for _, done := range insertedKeys {
			done.ix.Tree.Delete(done.key, tid, nil)
		}
		_, err := rel.heap.Delete(tid, nil)
		return err
	}
	return tid, undo, nil
}

// relHandle pairs a relation with its heap.
type relHandle struct {
	rel  *catalog.Relation
	heap *heap.Heap
}

func (db *DB) handleFor(name string) (relHandle, error) {
	rel, err := db.cat.Lookup(name)
	if err != nil {
		return relHandle{}, err
	}
	h, ok := db.heaps[rel.ID]
	if !ok {
		return relHandle{}, fmt.Errorf("engine: relation %s has no heap", name)
	}
	return relHandle{rel: rel, heap: h}, nil
}

// execInsert handles INSERT INTO ... VALUES. slots carries bound
// prepared-statement parameters (nil for ad-hoc statements).
func (db *DB) execInsert(s *sql.Insert, prof *profile.Counters, txn *Txn, slots *expr.ParamSlots) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rel, err := db.handleFor(s.Table)
	if err != nil {
		return 0, err
	}
	colIdx, err := insertColumnMap(rel.rel, s.Cols)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, rowExprs := range s.Rows {
		if len(rowExprs) != len(colIdx) {
			return n, fmt.Errorf("engine: INSERT has %d values for %d columns", len(rowExprs), len(colIdx))
		}
		values := make([]types.Datum, len(rel.rel.Attrs))
		for i := range values {
			values[i] = types.Null
		}
		for i, e := range rowExprs {
			d, err := evalConstAST(e, slots)
			if err != nil {
				return n, err
			}
			values[colIdx[i]] = d
		}
		_, undo, err := db.insertRowLocked(rel, values, prof)
		if err != nil {
			return n, err
		}
		if txn != nil {
			txn.undo = append(txn.undo, undo)
		}
		n++
	}
	return n, nil
}

func insertColumnMap(rel *catalog.Relation, cols []string) ([]int, error) {
	if len(cols) == 0 {
		idx := make([]int, len(rel.Attrs))
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	}
	idx := make([]int, len(cols))
	for i, name := range cols {
		j := rel.AttrIndex(name)
		if j < 0 {
			return nil, fmt.Errorf("engine: column %q not in %s", name, rel.Name)
		}
		idx[i] = j
	}
	return idx, nil
}

// evalConstAST evaluates a constant-only AST expression (INSERT values).
// slots supplies $n parameter values for prepared statements; with slots
// nil a placeholder is an error.
func evalConstAST(e sql.Expr, slots *expr.ParamSlots) (types.Datum, error) {
	switch n := e.(type) {
	case *sql.NumLit:
		c, err := parseNum(n)
		return c, err
	case *sql.StrLit:
		return types.NewString(n.Val), nil
	case *sql.NullLit:
		return types.Null, nil
	case *sql.BoolLit:
		return types.NewBool(n.Val), nil
	case *sql.DateLit:
		d, err := types.ParseDate(n.Val)
		if err != nil {
			return types.Null, err
		}
		return types.NewDate(d), nil
	case *sql.Placeholder:
		if slots == nil {
			return types.Null, fmt.Errorf("engine: parameter $%d outside a prepared statement", n.Idx)
		}
		if n.Idx < 1 || n.Idx > len(slots.Vals) {
			return types.Null, fmt.Errorf("engine: parameter $%d out of range (statement has %d)", n.Idx, len(slots.Vals))
		}
		return slots.Vals[n.Idx-1], nil
	case *sql.UnOp:
		if n.Op == "-" {
			d, err := evalConstAST(n.Kid, slots)
			if err != nil {
				return types.Null, err
			}
			if d.Kind() == types.KindFloat64 {
				return types.NewFloat64(-d.Float64()), nil
			}
			return types.NewInt64(-d.Int64()), nil
		}
	case *sql.BinOp:
		l, err := evalConstAST(n.L, slots)
		if err != nil {
			return types.Null, err
		}
		r, err := evalConstAST(n.R, slots)
		if err != nil {
			return types.Null, err
		}
		switch n.Op {
		case "+":
			return expr.ApplyArith(expr.Add, l, r), nil
		case "-":
			return expr.ApplyArith(expr.Sub, l, r), nil
		case "*":
			return expr.ApplyArith(expr.Mul, l, r), nil
		case "/":
			return expr.ApplyArith(expr.Div, l, r), nil
		}
	}
	return types.Null, fmt.Errorf("engine: INSERT values must be constants")
}

func parseNum(n *sql.NumLit) (types.Datum, error) {
	if n.IsFloat {
		var f float64
		if _, err := fmt.Sscanf(n.Text, "%g", &f); err != nil {
			return types.Null, fmt.Errorf("engine: bad number %q", n.Text)
		}
		return types.NewFloat64(f), nil
	}
	var v int64
	if _, err := fmt.Sscanf(n.Text, "%d", &v); err != nil {
		return types.Null, fmt.Errorf("engine: bad number %q", n.Text)
	}
	return types.NewInt64(v), nil
}

// execUpdate handles UPDATE ... SET ... WHERE by scanning the relation.
func (db *DB) execUpdate(s *sql.Update, prof *profile.Counters, txn *Txn, slots *expr.ParamSlots) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rel, err := db.handleFor(s.Table)
	if err != nil {
		return 0, err
	}
	where, setExprs, setCols, err := db.compileUpdate(rel.rel, s, slots)
	if err != nil {
		return 0, err
	}
	acc, err := db.accessFor(rel.rel)
	if err != nil {
		return 0, err
	}
	deform := acc.deform

	// Two phases: collect matching TIDs and new value rows, then apply
	// (updating during the scan would revisit moved tuples).
	type pending struct {
		tid    heap.TID
		oldVal []types.Datum
		newVal []types.Datum
	}
	var todo []pending
	ctx := &exec.Ctx{Expr: expr.Ctx{Prof: prof}}
	values := make([]types.Datum, len(rel.rel.Attrs))
	sc := rel.heap.Scan(prof)
	for {
		tid, tup, ok := sc.Next()
		if !ok {
			break
		}
		deform(tup, values, len(values), prof)
		if where != nil {
			v := where.Eval(values, &ctx.Expr)
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		old := exec.CloneRow(values)
		newVal := exec.CloneRow(values)
		for i, e := range setExprs {
			newVal[setCols[i]] = exec.CloneDatum(e.Eval(old, &ctx.Expr))
		}
		todo = append(todo, pending{tid: tid, oldVal: old, newVal: newVal})
	}
	sc.Close()
	if err := sc.Err(); err != nil {
		return 0, err
	}

	for _, pd := range todo {
		undo, err := db.applyUpdateLocked(rel, pd.tid, pd.oldVal, pd.newVal, prof)
		if err != nil {
			return 0, err
		}
		if txn != nil {
			txn.undo = append(txn.undo, undo)
		}
	}
	return int64(len(todo)), nil
}

func (db *DB) compileUpdate(rel *catalog.Relation, s *sql.Update, slots *expr.ParamSlots) (expr.Expr, []expr.Expr, []int, error) {
	conv := db.astConverter(rel, slots)
	var where expr.Expr
	var err error
	if s.Where != nil {
		where, err = conv(s.Where)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	var setExprs []expr.Expr
	var setCols []int
	for _, sc := range s.Set {
		i := rel.AttrIndex(sc.Col)
		if i < 0 {
			return nil, nil, nil, fmt.Errorf("engine: column %q not in %s", sc.Col, rel.Name)
		}
		e, err := conv(sc.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		setCols = append(setCols, i)
		setExprs = append(setExprs, e)
	}
	return where, setExprs, setCols, nil
}

// applyUpdateLocked rewrites one tuple and fixes indexes; the undo
// restores the previous state.
func (db *DB) applyUpdateLocked(rel relHandle, tid heap.TID, oldVal, newVal []types.Datum, prof *profile.Counters) (func() error, error) {
	acc, err := db.accessFor(rel.rel)
	if err != nil {
		return nil, err
	}
	tup, err := acc.form(newVal, prof)
	if err != nil {
		return nil, err
	}
	newTID, undoHeap, err := rel.heap.Update(tid, tup, prof)
	if err != nil {
		return nil, err
	}
	db.dataGen.Add(1)
	// Index maintenance: remove old keys, add new ones (also when only
	// the TID moved).
	var undoIdx []func()
	for _, ix := range db.byRel[rel.rel.ID] {
		oldKey := indexKey(oldVal, ix.Cols)
		newKey := indexKey(newVal, ix.Cols)
		keyChanged := btreeCompare(oldKey, newKey) != 0
		if !keyChanged && newTID == tid {
			continue
		}
		ix.Tree.Delete(oldKey, tid, prof)
		if err := ix.Tree.Insert(newKey, newTID, prof); err != nil {
			return nil, err
		}
		ixc, ok, ot, nt := ix, keyChanged, tid, newTID
		_ = ok
		undoIdx = append(undoIdx, func() {
			ixc.Tree.Delete(newKey, nt, nil)
			_ = ixc.Tree.Insert(oldKey, ot, nil)
		})
	}
	undo := func() error {
		for _, u := range undoIdx {
			u()
		}
		return undoHeap()
	}
	return undo, nil
}

func btreeCompare(a, b []types.Datum) int {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// execDelete handles DELETE FROM ... WHERE by scanning the relation.
func (db *DB) execDelete(s *sql.Delete, prof *profile.Counters, txn *Txn, slots *expr.ParamSlots) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rel, err := db.handleFor(s.Table)
	if err != nil {
		return 0, err
	}
	conv := db.astConverter(rel.rel, slots)
	var where expr.Expr
	if s.Where != nil {
		where, err = conv(s.Where)
		if err != nil {
			return 0, err
		}
	}
	acc, err := db.accessFor(rel.rel)
	if err != nil {
		return 0, err
	}
	deform := acc.deform
	type victim struct {
		tid heap.TID
		val []types.Datum
	}
	var victims []victim
	ctx := &expr.Ctx{Prof: prof}
	values := make([]types.Datum, len(rel.rel.Attrs))
	sc := rel.heap.Scan(prof)
	for {
		tid, tup, ok := sc.Next()
		if !ok {
			break
		}
		deform(tup, values, len(values), prof)
		if where != nil {
			v := where.Eval(values, ctx)
			if v.IsNull() || !v.Bool() {
				continue
			}
		}
		victims = append(victims, victim{tid: tid, val: exec.CloneRow(values)})
	}
	sc.Close()
	if err := sc.Err(); err != nil {
		return 0, err
	}
	for _, v := range victims {
		undo, err := db.deleteRowLocked(rel, v.tid, v.val, prof)
		if err != nil {
			return 0, err
		}
		if txn != nil {
			txn.undo = append(txn.undo, undo)
		}
	}
	return int64(len(victims)), nil
}

func (db *DB) deleteRowLocked(rel relHandle, tid heap.TID, values []types.Datum, prof *profile.Counters) (func() error, error) {
	undoHeap, err := rel.heap.Delete(tid, prof)
	if err != nil {
		return nil, err
	}
	db.dataGen.Add(1)
	for _, ix := range db.byRel[rel.rel.ID] {
		ix.Tree.Delete(indexKey(values, ix.Cols), tid, prof)
	}
	idxs := db.byRel[rel.rel.ID]
	undo := func() error {
		if err := undoHeap(); err != nil {
			return err
		}
		for _, ix := range idxs {
			if err := ix.Tree.Insert(indexKey(values, ix.Cols), tid, nil); err != nil {
				return err
			}
		}
		return nil
	}
	return undo, nil
}

// astConverter builds a converter that resolves identifiers against a
// single relation's attributes (for UPDATE/DELETE WHERE clauses). slots,
// when non-nil, lets the converted expression read $n prepared-statement
// parameters; the planner copy keeps the shared planner untouched.
func (db *DB) astConverter(rel *catalog.Relation, slots *expr.ParamSlots) func(sql.Expr) (expr.Expr, error) {
	pl := *db.planner
	if slots != nil {
		pl.Params = slots
		pl.ParamTypes = make([]types.T, len(slots.Vals))
	}
	return func(e sql.Expr) (expr.Expr, error) {
		planned, err := pl.ConvertForRelation(e, rel)
		return planned, err
	}
}
