package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"microspec/internal/core"
	"microspec/internal/txn"
	"microspec/internal/types"
)

// TestTxnWriteWriteConflict exercises first-updater-wins: two overlapping
// transactions update the same row; the second update returns a typed
// error wrapping txn.ErrWriteConflict, and after the loser rolls back the
// winner's value is the one that sticks.
func TestTxnWriteWriteConflict(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	a := db.Begin(nil)
	b := db.Begin(nil)

	rowA, tidA, ok, err := a.GetByIndex("dept_pkey", []types.Datum{types.NewInt32(2)})
	if err != nil || !ok {
		t.Fatalf("a lookup: %v %v", ok, err)
	}
	rowB, tidB, ok, err := b.GetByIndex("dept_pkey", []types.Datum{types.NewInt32(2)})
	if err != nil || !ok {
		t.Fatalf("b lookup: %v %v", ok, err)
	}
	if tidA != tidB {
		t.Fatalf("snapshots disagree on version: %v vs %v", tidA, tidB)
	}

	winner := append([]types.Datum(nil), rowA...)
	winner[1] = types.NewString("winner")
	if err := a.UpdateRow("dept", tidA, rowA, winner); err != nil {
		t.Fatalf("first updater must win: %v", err)
	}

	loser := append([]types.Datum(nil), rowB...)
	loser[1] = types.NewString("loser")
	err = b.UpdateRow("dept", tidB, rowB, loser)
	if err == nil {
		t.Fatal("second updater must lose")
	}
	if !errors.Is(err, txn.ErrWriteConflict) {
		t.Fatalf("conflict error not typed: %v", err)
	}
	var ce *txn.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("conflict error carries no detail: %v", err)
	}
	if ce.Mine != b.ID() || ce.Theirs != a.ID() {
		t.Errorf("ConflictError{Mine:%d Theirs:%d}, want mine=%d theirs=%d",
			ce.Mine, ce.Theirs, b.ID(), a.ID())
	}
	if err := b.Rollback(); err != nil {
		t.Fatalf("loser rollback: %v", err)
	}
	a.Commit()

	r := mustQuery(t, db, "select d_name from dept where d_id = 2")
	if r.Rows[0][0].Str() != "winner" {
		t.Errorf("final value = %v, want winner", r.Rows[0][0])
	}
}

// TestStatementConflictsWithOpenTxn checks that a statement-level UPDATE
// racing an open interactive transaction's uncommitted delete of the same
// row fails with the typed conflict error rather than blocking or
// clobbering the in-flight version.
func TestStatementConflictsWithOpenTxn(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	a := db.Begin(nil)
	row, tid, ok, err := a.GetByIndex("dept_pkey", []types.Datum{types.NewInt32(3)})
	if err != nil || !ok {
		t.Fatalf("lookup: %v %v", ok, err)
	}
	if err := a.DeleteRow("dept", tid, row); err != nil {
		t.Fatal(err)
	}
	_, err = db.Exec("update dept set d_name = 'steal' where d_id = 3")
	if err == nil {
		t.Fatal("statement must lose against the in-flight delete")
	}
	if !errors.Is(err, txn.ErrWriteConflict) {
		t.Fatalf("statement conflict not typed: %v", err)
	}
	if err := a.Rollback(); err != nil {
		t.Fatal(err)
	}
	// After rollback the row is live again and the statement retry works.
	mustExec(t, db, "update dept set d_name = 'steal' where d_id = 3")
	r := mustQuery(t, db, "select d_name from dept where d_id = 3")
	if r.Rows[0][0].Str() != "steal" {
		t.Errorf("retry lost: %v", r.Rows[0][0])
	}
}

// TestSnapshotIsolationReads checks that an open transaction keeps seeing
// its Begin-time snapshot while committed writes land around it, and that
// new statements see the new state immediately.
func TestSnapshotIsolationReads(t *testing.T) {
	db := setupMini(t, core.AllRoutines)
	reader := db.Begin(nil)
	before, _, ok, err := reader.GetByIndex("dept_pkey", []types.Datum{types.NewInt32(1)})
	if err != nil || !ok {
		t.Fatalf("lookup: %v %v", ok, err)
	}
	if before[1].Str() != "dept-1" {
		t.Fatalf("baseline = %v", before[1])
	}

	mustExec(t, db,
		"update dept set d_name = 'renamed' where d_id = 1",
		"insert into dept values (99, 'late', 'R9')",
	)

	// The open snapshot still sees the old name and not the new row.
	again, _, ok, err := reader.GetByIndex("dept_pkey", []types.Datum{types.NewInt32(1)})
	if err != nil || !ok {
		t.Fatalf("re-lookup: %v %v", ok, err)
	}
	if again[1].Str() != "dept-1" {
		t.Errorf("snapshot read moved: %v", again[1])
	}
	if _, _, ok, _ := reader.GetByIndex("dept_pkey", []types.Datum{types.NewInt32(99)}); ok {
		t.Error("snapshot sees a row inserted after Begin")
	}
	reader.Commit()

	// A fresh statement sees the committed state.
	r := mustQuery(t, db, "select d_name from dept where d_id = 1")
	if r.Rows[0][0].Str() != "renamed" {
		t.Errorf("new statement = %v", r.Rows[0][0])
	}
	r = mustQuery(t, db, "select count(*) from dept")
	if r.Rows[0][0].Int64() != 5 {
		t.Errorf("count = %v, want 5", r.Rows[0][0])
	}
}

// TestVacuumReclaimsDeadVersions repeatedly updates the same rows, then
// vacuums with no snapshots registered, and checks the dead versions (and
// their index entries) are gone while query results stay correct.
func TestVacuumReclaimsDeadVersions(t *testing.T) {
	db := Open(Config{Routines: core.AllRoutines, PoolPages: 1024, VacuumEvery: -1})
	mustExec(t, db, `create table kv (
		k integer not null,
		v integer not null,
		primary key (k))`)
	for k := range 16 {
		mustExec(t, db, fmt.Sprintf("insert into kv values (%d, 0)", k))
	}
	for round := 1; round <= 8; round++ {
		mustExec(t, db, fmt.Sprintf("update kv set v = %d", round))
	}
	dead := db.heaps[db.cat.Relations()[0].ID].DeadVersions()
	if dead == 0 {
		t.Fatal("updates left no dead versions to reclaim")
	}
	n, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != dead {
		t.Errorf("vacuumed %d, want %d", n, dead)
	}
	if after := db.heaps[db.cat.Relations()[0].ID].DeadVersions(); after != 0 {
		t.Errorf("dead versions after vacuum = %d", after)
	}
	r := mustQuery(t, db, "select count(*), sum(v) from kv")
	if r.Rows[0][0].Int64() != 16 || r.Rows[0][1].Int64() != 16*8 {
		t.Errorf("post-vacuum results: %v", r.Rows[0])
	}
	// Index lookups must still find every live row (old entries pruned,
	// live entries intact).
	for k := range 16 {
		r := mustQuery(t, db, fmt.Sprintf("select v from kv where k = %d", k))
		if len(r.Rows) != 1 || r.Rows[0][0].Int64() != 8 {
			t.Errorf("k=%d post-vacuum lookup: %v", k, r.Rows)
		}
	}
}

// TestVacuumRespectsSnapshots pins a snapshot, updates under it, and
// checks vacuum refuses to reclaim versions the snapshot can still see —
// then reclaims them once the snapshot is released.
func TestVacuumRespectsSnapshots(t *testing.T) {
	db := Open(Config{Routines: core.AllRoutines, PoolPages: 1024, VacuumEvery: -1})
	mustExec(t, db,
		"create table kv (k integer not null, v integer not null, primary key (k))",
		"insert into kv values (1, 10)")
	reader := db.Begin(nil)
	mustExec(t, db, "update kv set v = 20 where k = 1")

	if n, err := db.Vacuum(); err != nil || n != 0 {
		t.Fatalf("vacuum under pinned snapshot reclaimed %d (err %v)", n, err)
	}
	row, _, ok, err := reader.GetByIndex("kv_pkey", []types.Datum{types.NewInt32(1)})
	if err != nil || !ok {
		t.Fatalf("pinned read: %v %v", ok, err)
	}
	if row[1].Int64() != 10 {
		t.Errorf("pinned snapshot sees %v, want 10", row[1])
	}
	reader.Commit()

	if n, err := db.Vacuum(); err != nil || n != 1 {
		t.Fatalf("vacuum after release reclaimed %d (err %v), want 1", n, err)
	}
	r := mustQuery(t, db, "select v from kv where k = 1")
	if r.Rows[0][0].Int64() != 20 {
		t.Errorf("live version = %v", r.Rows[0][0])
	}
}

// TestThresholdVacuumTriggers configures a tiny VacuumEvery and checks the
// engine vacuums on its own after enough DML commits.
func TestThresholdVacuumTriggers(t *testing.T) {
	db := Open(Config{Routines: core.AllRoutines, PoolPages: 1024, VacuumEvery: 8})
	mustExec(t, db,
		"create table kv (k integer not null, v integer not null, primary key (k))")
	for k := range 4 {
		mustExec(t, db, fmt.Sprintf("insert into kv values (%d, 0)", k))
	}
	for round := range 16 {
		mustExec(t, db, fmt.Sprintf("update kv set v = %d", round))
	}
	rel := db.cat.Relations()[0]
	if dead := db.heaps[rel.ID].DeadVersions(); dead >= 16 {
		t.Errorf("threshold vacuum never ran: %d dead versions", dead)
	}
	snap := db.MetricsSnapshot()
	if snap.Counters["vacuum.runs"] == 0 {
		t.Error("vacuum.runs counter never incremented")
	}
	if snap.Counters["vacuum.reclaimed"] == 0 {
		t.Error("vacuum.reclaimed counter never incremented")
	}
}

// TestConcurrentReadersWritersEngine hammers the engine directly (the
// wire-level version lives in internal/server): writers update disjoint
// rows while readers run aggregate queries, and every aggregate must be a
// consistent snapshot — sum(v) is always a multiple of the row count,
// because each writer statement moves all its rows together.
func TestConcurrentReadersWritersEngine(t *testing.T) {
	db := Open(Config{Routines: core.AllRoutines, PoolPages: 2048, VacuumEvery: 32})
	mustExec(t, db,
		"create table acct (id integer not null, bal integer not null, primary key (id))")
	const rows = 32
	for i := range rows {
		mustExec(t, db, fmt.Sprintf("insert into acct values (%d, 100)", i))
	}
	const writers, readers, iters = 4, 4, 25
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)
	for w := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range iters {
				// Move every row by the same delta in one statement:
				// sum(bal) stays rows*100 + rows*k for whole k.
				delta := 1 + (w+i)%3
				if _, err := db.Exec(fmt.Sprintf("update acct set bal = bal + %d", delta)); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				if _, err := db.Exec(fmt.Sprintf("update acct set bal = bal - %d", delta)); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}()
	}
	for r := range readers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range iters {
				res, err := db.Query("select count(*), sum(bal) from acct")
				if err != nil {
					errc <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				n, sum := res.Rows[0][0].Int64(), res.Rows[0][1].Int64()
				if n != rows {
					errc <- fmt.Errorf("reader %d: count %d", r, n)
					return
				}
				if (sum-rows*100)%rows != 0 {
					errc <- fmt.Errorf("reader %d: torn aggregate sum=%d", r, sum)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	r := mustQuery(t, db, "select sum(bal) from acct")
	if r.Rows[0][0].Int64() != rows*100 {
		t.Errorf("final sum = %v, want %d", r.Rows[0][0], rows*100)
	}
}
