package engine

import (
	"testing"

	"microspec/internal/core"
	"microspec/internal/types"
)

const giveRaiseTxn = `prepare transaction give_raise as begin;
	update emp set e_salary = e_salary + $2 where e_id = $1;
	insert into raise_log values ($1, $2);
	select e_salary from emp where e_id = $1;
commit`

func setupTxnStmt(t *testing.T) *DB {
	t.Helper()
	db := setupMini(t, core.AllRoutines)
	mustExec(t, db, `create table raise_log (
		rl_emp integer not null,
		rl_amount double not null)`)
	return db
}

func TestPrepareTxnParsesAndRegisters(t *testing.T) {
	db := setupTxnStmt(t)
	ts, err := db.PrepareTxn(giveRaiseTxn)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if ts.Name() != "give_raise" || ts.NumParams() != 2 {
		t.Fatalf("Name=%q NumParams=%d", ts.Name(), ts.NumParams())
	}
	// Registered in the bee cache under kind "txn"; its stored executable
	// form is the rendered latch/index plan, so it has nonzero size.
	found := false
	for _, e := range db.Module().CacheEntries() {
		if e.Kind == core.TxnBeeKind && e.Name == "give_raise" {
			found = true
			if e.Bytes == 0 || e.Quarantined {
				t.Errorf("entry = %+v", e)
			}
		}
	}
	if !found {
		t.Error("give_raise not in bee cache")
	}
	if db.Module().Stats().TxnBees == 0 {
		t.Error("Stats.TxnBees is zero")
	}
}

func TestExecTxnFusedAndResult(t *testing.T) {
	db := setupTxnStmt(t)
	ts, err := db.PrepareTxn(giveRaiseTxn)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	res, affected, err := ts.ExecTxn(types.NewInt64(7), types.NewFloat64(250))
	if err != nil {
		t.Fatal(err)
	}
	if affected != 2 {
		t.Errorf("affected = %d, want 2 (update + insert)", affected)
	}
	if res == nil || len(res.Rows) != 1 {
		t.Fatalf("result = %+v", res)
	}
	// emp-7 started at 1000 + 7*10 + .50.
	if got := res.Rows[0][0].Float64(); got != 1070.50+250 {
		t.Errorf("salary = %v", got)
	}
	// The whole unit ran fused: one execution, no fallbacks.
	snap := db.MetricsSnapshot()
	if snap.Counters["txn_bee.executions"] != 1 {
		t.Errorf("txn_bee.executions = %d", snap.Counters["txn_bee.executions"])
	}
	if snap.Counters["txn_bee.fallbacks"] != 0 {
		t.Errorf("txn_bee.fallbacks = %d", snap.Counters["txn_bee.fallbacks"])
	}
	r := mustQuery(t, db, "select count(*) from raise_log")
	if r.Rows[0][0].Int64() != 1 {
		t.Errorf("raise_log rows = %v", r.Rows[0][0])
	}
}

func TestExecTxnBodyErrorRollsBackAll(t *testing.T) {
	// A failure in a later statement must undo the earlier ones: the
	// second insert violates the emp primary key, so the salary update and
	// the log insert both roll back.
	db := setupTxnStmt(t)
	ts, err := db.PrepareTxn(`prepare transaction dup as begin;
		update emp set e_salary = 1 where e_id = $1;
		insert into emp values ($1, 1, 'dup', 1.0, date '2000-01-01');
	commit`)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if _, _, err := ts.ExecTxn(types.NewInt64(3)); err == nil {
		t.Fatal("duplicate key insert succeeded")
	}
	r := mustQuery(t, db, "select e_salary from emp where e_id = 3")
	if got := r.Rows[0][0].Float64(); got != 1030.50 {
		t.Errorf("salary after rollback = %v, want 1030.50", got)
	}
}

func TestExecTxnReplansAfterDDL(t *testing.T) {
	db := setupTxnStmt(t)
	ts, err := db.PrepareTxn(giveRaiseTxn)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if _, _, err := ts.ExecTxn(types.NewInt64(1), types.NewFloat64(10)); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "create index emp_dept_idx on emp (e_dept)")
	if _, _, err := ts.ExecTxn(types.NewInt64(2), types.NewFloat64(10)); err != nil {
		t.Fatal(err)
	}
	snap := db.MetricsSnapshot()
	if snap.Counters["txn_bee.replans"] == 0 {
		t.Error("txn_bee.replans did not advance after DDL")
	}
	if snap.Counters["txn_bee.executions"] != 2 {
		t.Errorf("txn_bee.executions = %d", snap.Counters["txn_bee.executions"])
	}
}

func TestExecTxnPanicFallsBackSameResults(t *testing.T) {
	db := setupTxnStmt(t)
	ts, err := db.PrepareTxn(giveRaiseTxn)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	db.Module().InjectBeePanic(core.TxnBeeKind, "give_raise")
	res, affected, err := ts.ExecTxn(types.NewInt64(9), types.NewFloat64(100))
	if err != nil {
		t.Fatalf("fallback run: %v", err)
	}
	db.Module().ClearBeePanic()
	if affected != 2 {
		t.Errorf("affected = %d", affected)
	}
	if res == nil || len(res.Rows) != 1 || res.Rows[0][0].Float64() != 1090.50+100 {
		t.Fatalf("result = %+v", res)
	}
	snap := db.MetricsSnapshot()
	if snap.Counters["txn_bee.fallbacks"] == 0 {
		t.Error("txn_bee.fallbacks did not advance")
	}
	// Quarantined: the next execution goes statement-at-a-time too, and
	// still works (failpoint is clear, but the bee stays out of service).
	before := snap.Counters["txn_bee.executions"]
	if _, _, err := ts.ExecTxn(types.NewInt64(9), types.NewFloat64(100)); err != nil {
		t.Fatal(err)
	}
	snap = db.MetricsSnapshot()
	if snap.Counters["txn_bee.executions"] != before {
		t.Error("quarantined bee still executed fused")
	}
	r := mustQuery(t, db, "select e_salary from emp where e_id = 9")
	if got := r.Rows[0][0].Float64(); got != 1090.50+200 {
		t.Errorf("salary = %v, want both raises applied", got)
	}
	r = mustQuery(t, db, "select count(*) from raise_log")
	if r.Rows[0][0].Int64() != 2 {
		t.Errorf("raise_log rows = %v", r.Rows[0][0])
	}
}

func TestPrepareTxnRejectsBadBodies(t *testing.T) {
	db := setupTxnStmt(t)
	for _, text := range []string{
		"prepare transaction t as begin; commit",
		"prepare transaction t as begin; create table x (a integer); commit",
		"prepare transaction t as begin; select * from nosuch; commit",
	} {
		if _, err := db.PrepareTxn(text); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
}
