package engine

import (
	"fmt"

	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/index/btree"
	"microspec/internal/profile"
	"microspec/internal/storage/heap"
	"microspec/internal/types"
)

// Txn is a single-writer transaction: it holds the database write lock
// from Begin to Commit/Rollback and records logical undo actions for
// every modification, which Rollback replays in reverse (TPC-C's
// New-Order transaction aborts 1% of the time by specification).
//
// Besides SQL DML, Txn exposes the point-access helpers the TPC-C
// transaction implementations use — index lookup, fetch, update by TID —
// all of which run tuple deform/fill through the bee module exactly like
// the SQL paths (the per-tuple work is what the paper measures; the
// statement dispatch around it is constant between stock and bee builds).
type Txn struct {
	db   *DB
	prof *profile.Counters
	undo []func() error
	done bool
}

// Begin starts a transaction, taking the write lock.
func (db *DB) Begin(prof *profile.Counters) *Txn {
	db.mu.Lock()
	return &Txn{db: db, prof: prof}
}

// Commit ends the transaction keeping its effects.
func (t *Txn) Commit() {
	if t.done {
		return
	}
	t.done = true
	t.undo = nil
	t.db.mu.Unlock()
}

// Rollback reverses every recorded modification, newest first.
func (t *Txn) Rollback() error {
	if t.done {
		return nil
	}
	t.done = true
	var firstErr error
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.undo[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if len(t.undo) > 0 {
		t.db.dataGen.Add(1)
	}
	t.undo = nil
	t.db.mu.Unlock()
	return firstErr
}

// Insert adds one row to a relation.
func (t *Txn) Insert(relName string, values []types.Datum) error {
	rel, err := t.db.handleFor(relName)
	if err != nil {
		return err
	}
	_, undo, err := t.db.insertRowLocked(rel, values, t.prof)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undo)
	return nil
}

// GetByIndex fetches the first row whose index key prefix equals key.
// The returned row is owned by the caller.
func (t *Txn) GetByIndex(indexName string, key []types.Datum) (expr.Row, heap.TID, bool, error) {
	ix, ok := t.db.indexes[indexName]
	if !ok {
		return nil, heap.TID{}, false, fmt.Errorf("engine: no index %q", indexName)
	}
	tid, found := ix.Tree.SearchEq(btree.Key(key), t.prof)
	if !found {
		return nil, heap.TID{}, false, nil
	}
	row, err := t.fetchRow(ix, tid)
	if err != nil {
		return nil, heap.TID{}, false, err
	}
	return row, tid, true, nil
}

// ScanIndexPrefix visits every row whose key starts with prefix, in key
// order; fn returning false stops the scan.
func (t *Txn) ScanIndexPrefix(indexName string, prefix []types.Datum, fn func(row expr.Row, tid heap.TID) bool) error {
	ix, ok := t.db.indexes[indexName]
	if !ok {
		return fmt.Errorf("engine: no index %q", indexName)
	}
	var scanErr error
	ix.Tree.AscendPrefix(btree.Key(prefix), t.prof, func(_ btree.Key, tid heap.TID) bool {
		row, err := t.fetchRow(ix, tid)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(row, tid)
	})
	return scanErr
}

// ScanIndexRange visits rows with lo <= key <= hi (prefix semantics).
func (t *Txn) ScanIndexRange(indexName string, lo, hi []types.Datum, fn func(row expr.Row, tid heap.TID) bool) error {
	ix, ok := t.db.indexes[indexName]
	if !ok {
		return fmt.Errorf("engine: no index %q", indexName)
	}
	var scanErr error
	ix.Tree.AscendRange(btree.Key(lo), btree.Key(hi), t.prof, func(_ btree.Key, tid heap.TID) bool {
		row, err := t.fetchRow(ix, tid)
		if err != nil {
			scanErr = err
			return false
		}
		return fn(row, tid)
	})
	return scanErr
}

// LastByIndexPrefix returns the row with the greatest key under prefix
// (e.g. a customer's most recent order).
func (t *Txn) LastByIndexPrefix(indexName string, prefix []types.Datum) (expr.Row, heap.TID, bool, error) {
	ix, ok := t.db.indexes[indexName]
	if !ok {
		return nil, heap.TID{}, false, fmt.Errorf("engine: no index %q", indexName)
	}
	var lastTID heap.TID
	found := false
	ix.Tree.AscendPrefix(btree.Key(prefix), t.prof, func(_ btree.Key, tid heap.TID) bool {
		lastTID = tid
		found = true
		return true
	})
	if !found {
		return nil, heap.TID{}, false, nil
	}
	row, err := t.fetchRow(ix, lastTID)
	if err != nil {
		return nil, heap.TID{}, false, err
	}
	return row, lastTID, true, nil
}

// fetchRow reads and deforms one tuple through the cached deform routine
// (the GCL bee on a bee-enabled database).
func (t *Txn) fetchRow(ix *Index, tid heap.TID) (expr.Row, error) {
	h := t.db.heaps[ix.Rel.ID]
	acc, err := t.db.accessFor(ix.Rel)
	if err != nil {
		return nil, err
	}
	tup, release, err := h.Get(tid, t.prof)
	if err != nil {
		return nil, err
	}
	defer release()
	values := make([]types.Datum, len(ix.Rel.Attrs))
	acc.deform(tup, values, len(values), t.prof)
	return exec.CloneRow(values), nil
}

// UpdateRow replaces the values of the row at tid in relName. oldValues
// must be the row's current values (for index maintenance).
func (t *Txn) UpdateRow(relName string, tid heap.TID, oldValues, newValues []types.Datum) error {
	rel, err := t.db.handleFor(relName)
	if err != nil {
		return err
	}
	undo, err := t.db.applyUpdateLocked(rel, tid, oldValues, newValues, t.prof)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undo)
	return nil
}

// DeleteRow removes the row at tid. values must be its current values.
func (t *Txn) DeleteRow(relName string, tid heap.TID, values []types.Datum) error {
	rel, err := t.db.handleFor(relName)
	if err != nil {
		return err
	}
	undo, err := t.db.deleteRowLocked(rel, tid, values, t.prof)
	if err != nil {
		return err
	}
	t.undo = append(t.undo, undo)
	return nil
}

// BulkLoad inserts rows produced by next() until it returns false,
// bypassing per-row undo logging (loading populates fresh relations, as
// in the paper's Figure 8 experiment). It returns the number of rows
// loaded.
func (db *DB) BulkLoad(relName string, prof *profile.Counters, next func() ([]types.Datum, bool)) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rel, err := db.handleFor(relName)
	if err != nil {
		return 0, err
	}
	acc, err := db.accessFor(rel.rel)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		values, ok := next()
		if !ok {
			break
		}
		tup, err := acc.form(values, prof)
		if err != nil {
			return n, err
		}
		tid, err := rel.heap.Insert(tup, prof)
		if err != nil {
			return n, err
		}
		for _, ix := range db.byRel[rel.rel.ID] {
			key := indexKey(values, ix.Cols)
			for i := range key {
				key[i] = exec.CloneDatum(key[i])
			}
			if err := ix.Tree.Insert(key, tid, prof); err != nil {
				return n, err
			}
		}
		n++
	}
	rel.rel.Stats.RowCount = rel.heap.LiveTuples()
	rel.rel.Stats.Pages = int64(rel.heap.NumPages())
	if n > 0 {
		db.dataGen.Add(1)
	}
	return n, nil
}
