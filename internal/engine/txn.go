package engine

import (
	"fmt"

	"microspec/internal/catalog"
	"microspec/internal/exec"
	"microspec/internal/expr"
	"microspec/internal/index/btree"
	"microspec/internal/profile"
	"microspec/internal/storage/heap"
	"microspec/internal/txn"
	"microspec/internal/types"
)

// Txn is an interactive MVCC transaction: it takes a snapshot at Begin,
// stamps every version it writes with its own transaction ID, and records
// logical undo actions for every modification, which Rollback replays in
// reverse (TPC-C's New-Order transaction aborts 1% of the time by
// specification). Multiple Txns run concurrently — each operation takes
// only its table's latch for its own duration — so two transactions
// touching the same row race under first-updater-wins: the loser's
// operation returns an error wrapping txn.ErrWriteConflict and the caller
// must Rollback (and usually retry).
//
// Besides SQL DML, Txn exposes the point-access helpers the TPC-C
// transaction implementations use — index lookup, fetch, update by TID —
// all of which run tuple deform/fill through the bee module exactly like
// the SQL paths (the per-tuple work is what the paper measures; the
// statement dispatch around it is constant between stock and bee builds).
// Reads resolve visibility against the Begin-time snapshot plus the
// transaction's own writes.
type Txn struct {
	db      *DB
	prof    *profile.Counters
	id      uint64
	snap    *txn.Snapshot
	undo    []func() error
	touched map[catalog.RelID]relHandle
	done    bool
}

// Begin starts a transaction: engine lock in shared mode (held until
// Commit/Rollback, so DDL waits out live transactions), a fresh
// transaction ID, and a registered snapshot.
func (db *DB) Begin(prof *profile.Counters) *Txn {
	db.mu.RLock()
	id := db.tm.Begin()
	return &Txn{db: db, prof: prof, id: id, snap: db.tm.Snapshot(id)}
}

// ID returns the transaction's ID (tests and diagnostics).
func (t *Txn) ID() uint64 { return t.id }

// Commit ends the transaction keeping its effects, making them visible to
// every snapshot taken from now on. On a durable database it appends the
// commit record before the in-memory commit flips, then — after releasing
// db.mu, so concurrent committers share one group-commit sync — blocks
// until the record is durable. A non-nil error means the commit is NOT
// durable (the log writer crashed): on a kill-and-recover round the
// transaction will be absent after replay, so callers must not treat the
// work as done. Non-durable databases always return nil.
func (t *Txn) Commit() error {
	if t.done {
		return nil
	}
	t.done = true
	lsn, err := t.db.logCommit(t.id)
	if err != nil {
		// The commit record never reached the log: abort instead. No undo
		// replay is needed — the versions stay stamped with the aborted
		// xid, invisible until vacuum reclaims them.
		t.db.tm.Abort(t.id)
		t.snap.Release()
		t.undo = nil
		t.touched = nil
		t.db.mu.RUnlock()
		return err
	}
	t.db.tm.Commit(t.id)
	t.snap.Release()
	if len(t.undo) > 0 {
		t.db.dataGen.Add(1)
	}
	t.undo = nil
	for _, rel := range t.touched {
		rel.latch.Lock()
		t.db.maybeVacuumLocked(rel, t.prof)
		rel.latch.Unlock()
	}
	t.touched = nil
	t.db.mu.RUnlock()
	return t.db.waitDurable(lsn)
}

// Rollback reverses every recorded modification, newest first, then marks
// the transaction aborted. (The order matters: clearing the stamps before
// publishing the abort keeps concurrent first-updater-wins checks from
// racing the undo; a stamp they do catch mid-undo is recognized as
// aborted and taken over — see heap.MarkDeleted.)
func (t *Txn) Rollback() error {
	if t.done {
		return nil
	}
	t.done = true
	var firstErr error
	for i := len(t.undo) - 1; i >= 0; i-- {
		if err := t.undo[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if len(t.undo) > 0 {
		t.db.dataGen.Add(1)
	}
	t.undo = nil
	t.touched = nil
	t.db.logAbort(t.id)
	t.db.tm.Abort(t.id)
	t.snap.Release()
	t.db.mu.RUnlock()
	return firstErr
}

// pushUndo records an undo that re-acquires rel's table latch when it
// runs: Rollback replays undos long after the operations that logged them
// released their latches.
func (t *Txn) pushUndo(rel relHandle, undo func() error) {
	t.undo = append(t.undo, func() error {
		rel.latch.Lock()
		defer rel.latch.Unlock()
		return undo()
	})
	if t.touched == nil {
		t.touched = make(map[catalog.RelID]relHandle)
	}
	t.touched[rel.rel.ID] = rel
}

// noteConflict counts a write-write conflict loss on the metrics plane.
func (t *Txn) noteConflict(err error) error {
	if isConflict(err) {
		t.db.obs.txnConflicts.Inc()
	}
	return err
}

// Insert adds one row to a relation.
func (t *Txn) Insert(relName string, values []types.Datum) error {
	rel, err := t.db.handleFor(relName)
	if err != nil {
		return err
	}
	rel.latch.Lock()
	_, undo, err := t.db.insertRowLocked(rel, values, t.id, t.prof)
	rel.latch.Unlock()
	if err != nil {
		return t.noteConflict(err)
	}
	t.pushUndo(rel, undo)
	return nil
}

// GetByIndex fetches the visible row whose index key prefix equals key.
// The returned row is owned by the caller. Dead or
// invisible-to-this-snapshot versions under the same key are skipped (the
// index keeps one entry per version until vacuum).
func (t *Txn) GetByIndex(indexName string, key []types.Datum) (expr.Row, heap.TID, bool, error) {
	ix, rel, err := t.indexFor(indexName)
	if err != nil {
		return nil, heap.TID{}, false, err
	}
	tids := t.collectPrefix(ix, rel, btree.Key(key))
	for _, tid := range tids {
		row, ok, err := t.fetchRow(ix, tid)
		if err != nil {
			return nil, heap.TID{}, false, err
		}
		if ok {
			return row, tid, true, nil
		}
	}
	return nil, heap.TID{}, false, nil
}

// ScanIndexPrefix visits every visible row whose key starts with prefix,
// in key order; fn returning false stops the scan. fn may itself call
// UpdateRow/DeleteRow: the index positions are collected before fn runs,
// so the tree walk never holds the table latch across a callback.
func (t *Txn) ScanIndexPrefix(indexName string, prefix []types.Datum, fn func(row expr.Row, tid heap.TID) bool) error {
	ix, rel, err := t.indexFor(indexName)
	if err != nil {
		return err
	}
	for _, tid := range t.collectPrefix(ix, rel, btree.Key(prefix)) {
		row, ok, err := t.fetchRow(ix, tid)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if !fn(row, tid) {
			return nil
		}
	}
	return nil
}

// ScanIndexRange visits visible rows with lo <= key <= hi (prefix
// semantics).
func (t *Txn) ScanIndexRange(indexName string, lo, hi []types.Datum, fn func(row expr.Row, tid heap.TID) bool) error {
	ix, rel, err := t.indexFor(indexName)
	if err != nil {
		return err
	}
	rel.latch.RLock()
	var tids []heap.TID
	ix.Tree.AscendRange(btree.Key(lo), btree.Key(hi), t.prof, func(_ btree.Key, tid heap.TID) bool {
		tids = append(tids, tid)
		return true
	})
	rel.latch.RUnlock()
	for _, tid := range tids {
		row, ok, err := t.fetchRow(ix, tid)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if !fn(row, tid) {
			return nil
		}
	}
	return nil
}

// LastByIndexPrefix returns the visible row with the greatest key under
// prefix (e.g. a customer's most recent order).
func (t *Txn) LastByIndexPrefix(indexName string, prefix []types.Datum) (expr.Row, heap.TID, bool, error) {
	ix, rel, err := t.indexFor(indexName)
	if err != nil {
		return nil, heap.TID{}, false, err
	}
	tids := t.collectPrefix(ix, rel, btree.Key(prefix))
	for i := len(tids) - 1; i >= 0; i-- {
		row, ok, err := t.fetchRow(ix, tids[i])
		if err != nil {
			return nil, heap.TID{}, false, err
		}
		if ok {
			return row, tids[i], true, nil
		}
	}
	return nil, heap.TID{}, false, nil
}

// indexFor resolves an index and its table handle.
func (t *Txn) indexFor(indexName string) (*Index, relHandle, error) {
	ix, ok := t.db.indexes[indexName]
	if !ok {
		return nil, relHandle{}, fmt.Errorf("engine: no index %q", indexName)
	}
	rel, err := t.db.handleFor(ix.Rel.Name)
	if err != nil {
		return nil, relHandle{}, err
	}
	return ix, rel, nil
}

// collectPrefix gathers the TIDs of every index entry under prefix while
// holding the table latch in shared mode — the B+tree is not internally
// synchronized, and concurrent DML mutates it under the exclusive latch.
func (t *Txn) collectPrefix(ix *Index, rel relHandle, prefix btree.Key) []heap.TID {
	rel.latch.RLock()
	var tids []heap.TID
	ix.Tree.AscendPrefix(prefix, t.prof, func(_ btree.Key, tid heap.TID) bool {
		tids = append(tids, tid)
		return true
	})
	rel.latch.RUnlock()
	return tids
}

// fetchRow reads and deforms one tuple version through the cached deform
// routine (the GCL bee on a bee-enabled database), filtered through the
// transaction's snapshot. ok=false means the version is invisible or
// gone.
func (t *Txn) fetchRow(ix *Index, tid heap.TID) (expr.Row, bool, error) {
	h := t.db.heaps[ix.Rel.ID]
	acc, err := t.db.accessFor(ix.Rel)
	if err != nil {
		return nil, false, err
	}
	tup, release, ok, err := h.Get(tid, t.snap, t.prof)
	if err != nil || !ok {
		return nil, false, err
	}
	defer release()
	values := make([]types.Datum, len(ix.Rel.Attrs))
	acc.deform(tup, values, len(values), t.prof)
	return exec.CloneRow(values), true, nil
}

// UpdateRow replaces the values of the row version at tid in relName.
// oldValues must be the row's current values (for index maintenance). A
// returned error wrapping txn.ErrWriteConflict means a concurrent
// transaction updated the row first; Rollback and retry.
func (t *Txn) UpdateRow(relName string, tid heap.TID, oldValues, newValues []types.Datum) error {
	rel, err := t.db.handleFor(relName)
	if err != nil {
		return err
	}
	rel.latch.Lock()
	undo, err := t.db.applyUpdateLocked(rel, tid, oldValues, newValues, t.id, t.prof)
	rel.latch.Unlock()
	if err != nil {
		return t.noteConflict(err)
	}
	t.pushUndo(rel, undo)
	return nil
}

// DeleteRow stamps the row version at tid deleted. values is accepted for
// call-site compatibility (index entries are no longer removed eagerly —
// vacuum reclaims them with the version).
func (t *Txn) DeleteRow(relName string, tid heap.TID, values []types.Datum) error {
	_ = values
	rel, err := t.db.handleFor(relName)
	if err != nil {
		return err
	}
	rel.latch.Lock()
	undo, err := t.db.deleteRowLocked(rel, tid, t.id, t.prof)
	rel.latch.Unlock()
	if err != nil {
		return t.noteConflict(err)
	}
	t.pushUndo(rel, undo)
	return nil
}

// BulkLoad inserts rows produced by next() until it returns false,
// bypassing per-row undo logging (loading populates fresh relations, as
// in the paper's Figure 8 experiment). Rows are stamped txn.Frozen —
// immediately visible to every snapshot — and the whole load runs under
// the exclusive engine lock, quiescing all other activity. It returns the
// number of rows loaded.
func (db *DB) BulkLoad(relName string, prof *profile.Counters, next func() ([]types.Datum, bool)) (int64, error) {
	if db.recovering.Load() {
		return 0, ErrRecovering
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rel, err := db.handleFor(relName)
	if err != nil {
		return 0, err
	}
	acc, err := db.accessFor(rel.rel)
	if err != nil {
		return 0, err
	}
	// Bulk loads skip per-tuple logging: the rows are stamped txn.Frozen
	// and made durable wholesale by the checkpoint taken below, which is
	// far cheaper than one record per row.
	if db.wal != nil {
		rel.heap.SetWAL(nil)
		defer rel.heap.SetWAL(db.wal)
	}
	var n int64
	for {
		values, ok := next()
		if !ok {
			break
		}
		tup, err := acc.form(values, prof)
		if err != nil {
			return n, err
		}
		tid, err := rel.heap.Insert(tup, txn.Frozen, prof)
		if err != nil {
			return n, err
		}
		for _, ix := range db.byRel[rel.rel.ID] {
			key := indexKey(values, ix.Cols)
			for i := range key {
				key[i] = exec.CloneDatum(key[i])
			}
			if err := ix.Tree.Insert(key, tid, prof); err != nil {
				return n, err
			}
		}
		n++
	}
	rel.rel.Stats.RowCount = rel.heap.LiveTuples()
	rel.rel.Stats.Pages = int64(rel.heap.NumPages())
	if n > 0 {
		db.dataGen.Add(1)
		if err := db.checkpointLocked(); err != nil {
			return n, err
		}
	}
	return n, nil
}
