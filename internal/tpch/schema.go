// Package tpch is the TPC-H kit: a DBGEN-equivalent data generator
// parameterized by scale factor, the benchmark schema (with the paper's
// LOWCARD annotations on the low-cardinality attributes of lineitem,
// orders, part, and nation — the relations its Figure 5 discussion names
// as tuple-bee enabled), and the 22 queries with the specification's
// validation parameter values.
package tpch

// SchemaDDL returns the CREATE TABLE statements for the eight TPC-H
// relations. DECIMAL columns map to float64 (DESIGN.md deviations); the
// LOWCARD clauses are the paper's annotation DDL ("We also added DDL
// clauses to identify the handful of low-cardinality attributes").
func SchemaDDL() []string {
	return []string{
		`create table region (
			r_regionkey integer not null,
			r_name char(25) not null,
			r_comment varchar(152) not null,
			primary key (r_regionkey))`,
		`create table nation (
			n_nationkey integer not null,
			n_name char(25) not null,
			n_regionkey integer not null lowcard,
			n_comment varchar(152) not null,
			primary key (n_nationkey))`,
		`create table supplier (
			s_suppkey integer not null,
			s_name char(25) not null,
			s_address varchar(40) not null,
			s_nationkey integer not null,
			s_phone char(15) not null,
			s_acctbal decimal(15,2) not null,
			s_comment varchar(101) not null,
			primary key (s_suppkey))`,
		`create table part (
			p_partkey integer not null,
			p_name varchar(55) not null,
			p_mfgr char(25) not null lowcard,
			p_brand char(10) not null lowcard,
			p_type varchar(25) not null,
			p_size integer not null,
			p_container char(10) not null lowcard,
			p_retailprice decimal(15,2) not null,
			p_comment varchar(23) not null,
			primary key (p_partkey))`,
		`create table partsupp (
			ps_partkey integer not null,
			ps_suppkey integer not null,
			ps_availqty integer not null,
			ps_supplycost decimal(15,2) not null,
			ps_comment varchar(199) not null,
			primary key (ps_partkey, ps_suppkey))`,
		`create table customer (
			c_custkey integer not null,
			c_name varchar(25) not null,
			c_address varchar(40) not null,
			c_nationkey integer not null,
			c_phone char(15) not null,
			c_acctbal decimal(15,2) not null,
			c_mktsegment char(10) not null,
			c_comment varchar(117) not null,
			primary key (c_custkey))`,
		`create table orders (
			o_orderkey integer not null,
			o_custkey integer not null,
			o_orderstatus char(1) not null lowcard,
			o_totalprice decimal(15,2) not null,
			o_orderdate date not null,
			o_orderpriority char(15) not null lowcard,
			o_clerk char(15) not null,
			o_shippriority integer not null lowcard,
			o_comment varchar(79) not null,
			primary key (o_orderkey))`,
		`create table lineitem (
			l_orderkey integer not null,
			l_partkey integer not null,
			l_suppkey integer not null,
			l_linenumber integer not null,
			l_quantity decimal(15,2) not null,
			l_extendedprice decimal(15,2) not null,
			l_discount decimal(15,2) not null,
			l_tax decimal(15,2) not null,
			l_returnflag char(1) not null lowcard,
			l_linestatus char(1) not null lowcard,
			l_shipdate date not null,
			l_commitdate date not null,
			l_receiptdate date not null,
			l_shipinstruct char(25) not null lowcard,
			l_shipmode char(10) not null lowcard,
			l_comment varchar(44) not null)`,
	}
}

// TableNames lists the relations in dependency (load) order.
func TableNames() []string {
	return []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"}
}
