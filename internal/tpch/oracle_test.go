package tpch

import (
	"math"
	"sync"
	"testing"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/types"
)

// Oracle tests: selected TPC-H queries are recomputed in plain Go
// directly over the generator's row streams and compared with the SQL
// engine's answers — an independent correctness check that does not rely
// on comparing two configurations of the same engine.

var (
	oracleOnce sync.Once
	oracleddb  *engine.DB
	oracleErr  error
)

// oracleDB shares one loaded database across the oracle tests (they are
// read-only).
func oracleDB(t *testing.T) *engine.DB {
	t.Helper()
	oracleOnce.Do(func() {
		oracleddb, oracleErr = NewDatabase(engine.Config{Routines: core.AllRoutines}, testSF)
	})
	if oracleErr != nil {
		t.Fatal(oracleErr)
	}
	return oracleddb
}

func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), 1)
	return diff/scale < 1e-9
}

// TestQ6Oracle recomputes q6's revenue sum by hand.
func TestQ6Oracle(t *testing.T) {
	db := oracleDB(t)
	lo := types.MustParseDate("1994-01-01")
	hi := types.MustParseDate("1995-01-01")

	want := 0.0
	iter := NewGenerator(testSF).LineitemRows()
	for {
		row, ok := iter()
		if !ok {
			break
		}
		ship := row[10].DateDays()
		disc := row[6].Float64()
		qty := row[4].Float64()
		price := row[5].Float64()
		if ship >= lo && ship < hi && disc >= 0.05 && disc <= 0.07 && qty < 24 {
			want += price * disc
		}
	}

	r, err := db.Query(Queries()[6])
	if err != nil {
		t.Fatal(err)
	}
	got := r.Rows[0][0]
	if want == 0 {
		if !got.IsNull() {
			t.Fatalf("q6: want NULL (no qualifying rows), got %v", got)
		}
		return
	}
	if !approxEq(got.Float64(), want) {
		t.Fatalf("q6 revenue: engine %v, oracle %v", got.Float64(), want)
	}
}

// TestQ1Oracle recomputes q1's grouped aggregates by hand.
func TestQ1Oracle(t *testing.T) {
	db := oracleDB(t)
	cutoff := types.SubInterval(types.MustParseDate("1998-12-01"), types.Interval{Days: 90})

	type agg struct {
		qty, price, disc, discPrice, charge float64
		n                                   int64
	}
	want := map[string]*agg{}
	iter := NewGenerator(testSF).LineitemRows()
	for {
		row, ok := iter()
		if !ok {
			break
		}
		if row[10].DateDays() > cutoff {
			continue
		}
		key := row[8].Str() + "|" + row[9].Str()
		a := want[key]
		if a == nil {
			a = &agg{}
			want[key] = a
		}
		qty, price, disc, tax := row[4].Float64(), row[5].Float64(), row[6].Float64(), row[7].Float64()
		a.qty += qty
		a.price += price
		a.disc += disc
		a.discPrice += price * (1 - disc)
		a.charge += price * (1 - disc) * (1 + tax)
		a.n++
	}

	r, err := db.Query(Queries()[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(want) {
		t.Fatalf("q1 groups: engine %d, oracle %d", len(r.Rows), len(want))
	}
	for _, row := range r.Rows {
		key := row[0].Str() + "|" + row[1].Str()
		a := want[key]
		if a == nil {
			t.Fatalf("unexpected group %q", key)
		}
		checks := []struct {
			name string
			got  float64
			want float64
		}{
			{"sum_qty", row[2].Float64(), a.qty},
			{"sum_base_price", row[3].Float64(), a.price},
			{"sum_disc_price", row[4].Float64(), a.discPrice},
			{"sum_charge", row[5].Float64(), a.charge},
			{"avg_qty", row[6].Float64(), a.qty / float64(a.n)},
			{"avg_disc", row[8].Float64(), a.disc / float64(a.n)},
		}
		for _, c := range checks {
			if !approxEq(c.got, c.want) {
				t.Errorf("q1 %s (%s): engine %v, oracle %v", c.name, key, c.got, c.want)
			}
		}
		if row[9].Int64() != a.n {
			t.Errorf("q1 count_order (%s): engine %v, oracle %d", key, row[9], a.n)
		}
	}
}

// TestQ4Oracle recomputes q4 (EXISTS decorrelation) by hand.
func TestQ4Oracle(t *testing.T) {
	db := oracleDB(t)
	lo := types.MustParseDate("1993-07-01")
	hi := types.AddInterval(lo, types.Interval{Months: 3})

	g := NewGenerator(testSF)
	lateOrders := map[int32]bool{} // orders with a commit<receipt line
	li := g.LineitemRows()
	for {
		row, ok := li()
		if !ok {
			break
		}
		if row[11].DateDays() < row[12].DateDays() {
			lateOrders[row[0].Int32()] = true
		}
	}
	want := map[string]int64{}
	oi := g.OrderRows()
	for {
		row, ok := oi()
		if !ok {
			break
		}
		od := row[4].DateDays()
		if od >= lo && od < hi && lateOrders[row[0].Int32()] {
			want[row[5].Str()]++
		}
	}

	r, err := db.Query(Queries()[4])
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(want) {
		t.Fatalf("q4 groups: engine %d, oracle %d", len(r.Rows), len(want))
	}
	for _, row := range r.Rows {
		if got := row[1].Int64(); got != want[row[0].Str()] {
			t.Errorf("q4 %s: engine %d, oracle %d", row[0].Str(), got, want[row[0].Str()])
		}
	}
}

// TestQ13Oracle recomputes q13 (left outer join + double grouping).
func TestQ13Oracle(t *testing.T) {
	db := oracleDB(t)
	g := NewGenerator(testSF)

	// Count qualifying orders per customer.
	perCust := map[int32]int64{}
	oi := g.OrderRows()
	for {
		row, ok := oi()
		if !ok {
			break
		}
		comment := row[8].Str()
		if matchesSpecialRequests(comment) {
			continue
		}
		perCust[row[1].Int32()]++
	}
	want := map[int64]int64{} // c_count → customers
	nCust := g.NumCustomer()
	for c := 1; c <= nCust; c++ {
		want[perCust[int32(c)]]++
	}

	r, err := db.Query(Queries()[13])
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(want) {
		t.Fatalf("q13 groups: engine %d, oracle %d", len(r.Rows), len(want))
	}
	for _, row := range r.Rows {
		if got := row[1].Int64(); got != want[row[0].Int64()] {
			t.Errorf("q13 c_count=%d: engine %d, oracle %d", row[0].Int64(), got, want[row[0].Int64()])
		}
	}
}

// matchesSpecialRequests is LIKE '%special%requests%'.
func matchesSpecialRequests(s string) bool {
	i := indexOf(s, "special")
	if i < 0 {
		return false
	}
	return indexOf(s[i+len("special"):], "requests") >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
