package tpch

import (
	"testing"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/types"
)

const testSF = 0.003

func loadPair(t *testing.T) (stock, bee *engine.DB) {
	t.Helper()
	var err error
	stock, err = NewDatabase(engine.Config{Routines: core.Stock}, testSF)
	if err != nil {
		t.Fatal(err)
	}
	bee, err = NewDatabase(engine.Config{Routines: core.AllRoutines}, testSF)
	if err != nil {
		t.Fatal(err)
	}
	return stock, bee
}

func TestGeneratorCardinalities(t *testing.T) {
	g := NewGenerator(0.001)
	counts := map[string]int{}
	for name, iter := range map[string]RowIter{
		"region":   g.RegionRows(0),
		"nation":   g.NationRows(0),
		"supplier": g.SupplierRows(),
		"part":     g.PartRows(),
		"partsupp": g.PartSuppRows(),
		"customer": g.CustomerRows(),
		"orders":   g.OrderRows(),
		"lineitem": g.LineitemRows(),
	} {
		n := 0
		for {
			if _, ok := iter(); !ok {
				break
			}
			n++
		}
		counts[name] = n
	}
	if counts["region"] != 5 || counts["nation"] != 25 {
		t.Errorf("fixed relations: %v", counts)
	}
	if counts["supplier"] != 10 || counts["part"] != 200 || counts["customer"] != 150 {
		t.Errorf("scaled relations: %v", counts)
	}
	if counts["partsupp"] != 4*counts["part"] {
		t.Errorf("partsupp = %d, want 4·part", counts["partsupp"])
	}
	if counts["orders"] != 1500 {
		t.Errorf("orders = %d", counts["orders"])
	}
	if counts["lineitem"] < counts["orders"] || counts["lineitem"] > 7*counts["orders"] {
		t.Errorf("lineitem = %d for %d orders", counts["lineitem"], counts["orders"])
	}
}

func TestGeneratorDeterministicAndConsistent(t *testing.T) {
	g := NewGenerator(0.001)
	// Orders and lineitems must agree on keys and status.
	lines := map[int32][]string{} // orderkey → linestatus values
	li := g.LineitemRows()
	for {
		row, ok := li()
		if !ok {
			break
		}
		lines[row[0].Int32()] = append(lines[row[0].Int32()], row[9].Str())
	}
	oi := g.OrderRows()
	checked := 0
	for {
		row, ok := oi()
		if !ok {
			break
		}
		key := row[0].Int32()
		ls := lines[key]
		if len(ls) == 0 {
			t.Fatalf("order %d has no lineitems", key)
		}
		status := row[2].Str()
		allF, allO := true, true
		for _, s := range ls {
			if s != "F" {
				allF = false
			}
			if s != "O" {
				allO = false
			}
		}
		switch {
		case allF && status != "F":
			t.Fatalf("order %d: all F but status %s", key, status)
		case allO && status != "O":
			t.Fatalf("order %d: all O but status %s", key, status)
		case !allF && !allO && status != "P":
			t.Fatalf("order %d: mixed but status %s", key, status)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no orders checked")
	}
}

func TestLoadAndRowCounts(t *testing.T) {
	db, err := NewDatabase(engine.Config{Routines: core.AllRoutines}, testSF)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(testSF)
	r, err := db.Query("select count(*) from orders")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Rows[0][0].Int64(); got != int64(g.NumOrders()) {
		t.Errorf("orders = %d, want %d", got, g.NumOrders())
	}
	// Tuple bees exist for the annotated relations.
	if db.Module().Stats().TupleBees == 0 {
		t.Error("no tuple bees created during load")
	}
	// Referential sanity: every lineitem's order exists.
	r, err = db.Query(`select count(*) from lineitem
		where l_orderkey not in (select o_orderkey from orders)`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int64() != 0 {
		t.Error("dangling lineitem orderkeys")
	}
}

func TestTupleBeeStorageSmallerThanStock(t *testing.T) {
	stock, bee := loadPair(t)
	sp, bp := stock.TotalPages(), bee.TotalPages()
	if bp >= sp {
		t.Errorf("bee-enabled storage (%d pages) must be smaller than stock (%d pages)", bp, sp)
	}
}

// TestAll22QueriesAgree runs every TPC-H query on the stock and the
// bee-enabled database and requires identical results — the
// end-to-end correctness statement for every micro-specialization at
// once.
func TestAll22QueriesAgree(t *testing.T) {
	stock, bee := loadPair(t)
	for _, qn := range QueryNumbers() {
		q := Queries()[qn]
		rs, err := stock.Query(q)
		if err != nil {
			t.Fatalf("q%d stock: %v", qn, err)
		}
		rb, err := bee.Query(q)
		if err != nil {
			t.Fatalf("q%d bee: %v", qn, err)
		}
		if len(rs.Rows) != len(rb.Rows) {
			t.Errorf("q%d: stock %d rows, bee %d rows", qn, len(rs.Rows), len(rb.Rows))
			continue
		}
		for i := range rs.Rows {
			for j := range rs.Rows[i] {
				a, b := rs.Rows[i][j], rb.Rows[i][j]
				if a.IsNull() != b.IsNull() {
					t.Errorf("q%d row %d col %d: null mismatch %v vs %v", qn, i, j, a, b)
					continue
				}
				if a.IsNull() {
					continue
				}
				if a.Kind() == types.KindFloat64 {
					af, bf := a.Float64(), b.Float64()
					diff := af - bf
					if diff < 0 {
						diff = -diff
					}
					scale := 1.0
					if af > 1 || af < -1 {
						scale = af
						if scale < 0 {
							scale = -scale
						}
					}
					if diff/scale > 1e-9 {
						t.Errorf("q%d row %d col %d: %v vs %v", qn, i, j, af, bf)
					}
				} else if a.Compare(b) != 0 {
					t.Errorf("q%d row %d col %d: %v vs %v", qn, i, j, a, b)
				}
			}
		}
	}
}

// TestQ1Sanity verifies q1's aggregate structure on a tiny dataset.
func TestQ1Sanity(t *testing.T) {
	db, err := NewDatabase(engine.Config{Routines: core.AllRoutines}, testSF)
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.Query(Queries()[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 || len(r.Rows) > 4 {
		t.Fatalf("q1 groups = %d, want 1..4 (returnflag × linestatus)", len(r.Rows))
	}
	if len(r.Cols) != 10 {
		t.Fatalf("q1 cols = %d", len(r.Cols))
	}
	// count_order is positive and avg consistent with sum/count.
	for _, row := range r.Rows {
		count := float64(row[9].Int64())
		if count <= 0 {
			t.Fatal("empty q1 group")
		}
		sumQty, avgQty := row[2].Float64(), row[6].Float64()
		if diff := sumQty/count - avgQty; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("avg_qty inconsistent: %v vs %v", sumQty/count, avgQty)
		}
	}
}
