package tpch

import (
	"fmt"
	"math/rand"

	"microspec/internal/types"
)

// Generator produces TPC-H data deterministically for a scale factor.
// Cardinalities follow the specification (supplier SF·10k, part SF·200k,
// partsupp 4·part, customer SF·150k, orders SF·1.5M, lineitem 1–7 per
// order); value distributions are the specification's, with the text
// grammar simplified to weighted word pools that preserve every substring
// the queries select on (green, forest%, %special%requests%,
// %Customer%Complaints%, PROMO%, …). See DESIGN.md §1.
type Generator struct {
	SF float64
}

// NewGenerator returns a generator for the given scale factor.
func NewGenerator(sf float64) *Generator { return &Generator{SF: sf} }

// Cardinalities.

// NumSupplier returns the supplier row count.
func (g *Generator) NumSupplier() int { return maxInt(1, int(g.SF*10000)) }

// NumPart returns the part row count.
func (g *Generator) NumPart() int { return maxInt(1, int(g.SF*200000)) }

// NumCustomer returns the customer row count.
func (g *Generator) NumCustomer() int { return maxInt(1, int(g.SF*150000)) }

// NumOrders returns the orders row count.
func (g *Generator) NumOrders() int { return maxInt(1, int(g.SF*1500000)) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Static pools (TPC-H specification §4.2.2 and Appendix).

var regions = []struct {
	key  int32
	name string
}{
	{0, "AFRICA"}, {1, "AMERICA"}, {2, "ASIA"}, {3, "EUROPE"}, {4, "MIDDLE EAST"},
}

var nations = []struct {
	key    int32
	name   string
	region int32
}{
	{0, "ALGERIA", 0}, {1, "ARGENTINA", 1}, {2, "BRAZIL", 1}, {3, "CANADA", 1},
	{4, "EGYPT", 4}, {5, "ETHIOPIA", 0}, {6, "FRANCE", 3}, {7, "GERMANY", 3},
	{8, "INDIA", 2}, {9, "INDONESIA", 2}, {10, "IRAN", 4}, {11, "IRAQ", 4},
	{12, "JAPAN", 2}, {13, "JORDAN", 4}, {14, "KENYA", 0}, {15, "MOROCCO", 0},
	{16, "MOZAMBIQUE", 0}, {17, "PERU", 1}, {18, "CHINA", 2}, {19, "ROMANIA", 3},
	{20, "SAUDI ARABIA", 4}, {21, "VIETNAM", 2}, {22, "RUSSIA", 3},
	{23, "UNITED KINGDOM", 3}, {24, "UNITED STATES", 1},
}

var colors = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
	"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
	"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
	"frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
	"hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn",
	"lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
	"midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
	"orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
	"puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
	"sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
	"steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white",
	"yellow",
}

var typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

var containerSyllable1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
var containerSyllable2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

// commentWords feeds the simplified text grammar. It deliberately
// includes the words the benchmark predicates search for.
var commentWords = []string{
	"carefully", "quickly", "furiously", "slyly", "blithely", "ironic",
	"regular", "final", "express", "special", "pending", "bold", "even",
	"silent", "unusual", "requests", "deposits", "packages", "instructions",
	"accounts", "theodolites", "foxes", "pinto", "beans", "ideas", "dependencies",
	"platelets", "excuses", "asymptotes", "somas", "dugouts", "waters",
}

// Date anchors (TPC-H §4.2.3).
var (
	startDate = types.MustParseDate("1992-01-01")
	endDate   = types.MustParseDate("1998-08-02")
	cutoff    = types.MustParseDate("1995-06-17")
)

func comment(rng *rand.Rand, maxLen int) string {
	n := 3 + rng.Intn(6)
	out := ""
	for i := 0; i < n; i++ {
		w := commentWords[rng.Intn(len(commentWords))]
		if len(out)+1+len(w) > maxLen {
			break
		}
		if out != "" {
			out += " "
		}
		out += w
	}
	return out
}

func phone(rng *rand.Rand, nationkey int32) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", 10+nationkey,
		100+rng.Intn(900), 100+rng.Intn(900), 1000+rng.Intn(9000))
}

func money(rng *rand.Rand, lo, hi float64) float64 {
	cents := int64(lo*100) + rng.Int63n(int64((hi-lo)*100)+1)
	return float64(cents) / 100
}

// RowIter yields one tuple per call; ok=false ends the stream. The
// signature matches engine.DB.BulkLoad.
type RowIter func() ([]types.Datum, bool)

// RegionRows returns the 5 region tuples. extraRows pads the relation
// (Figure 8 loads region and nation with 1M rows each because the
// originals are too small to measure).
func (g *Generator) RegionRows(extraRows int) RowIter {
	rng := rand.New(rand.NewSource(101))
	i := 0
	return func() ([]types.Datum, bool) {
		if i >= len(regions)+extraRows {
			return nil, false
		}
		r := regions[i%len(regions)]
		key := int32(i)
		if i < len(regions) {
			key = r.key
		} else {
			key = int32(i)
		}
		i++
		return []types.Datum{
			types.NewInt32(key),
			types.NewChar(r.name),
			types.NewString(comment(rng, 152)),
		}, true
	}
}

// NationRows returns the 25 nation tuples plus extraRows padding rows.
func (g *Generator) NationRows(extraRows int) RowIter {
	rng := rand.New(rand.NewSource(102))
	i := 0
	return func() ([]types.Datum, bool) {
		if i >= len(nations)+extraRows {
			return nil, false
		}
		n := nations[i%len(nations)]
		key := n.key
		if i >= len(nations) {
			key = int32(i)
		}
		i++
		return []types.Datum{
			types.NewInt32(key),
			types.NewChar(n.name),
			types.NewInt32(n.region),
			types.NewString(comment(rng, 152)),
		}, true
	}
}

// SupplierRows returns the supplier stream. Every 50th supplier's comment
// contains "Customer Complaints" (q16's anti-pattern).
func (g *Generator) SupplierRows() RowIter {
	rng := rand.New(rand.NewSource(103))
	n := g.NumSupplier()
	i := 0
	return func() ([]types.Datum, bool) {
		if i >= n {
			return nil, false
		}
		i++
		key := int32(i)
		nationkey := nations[rng.Intn(len(nations))].key
		cmt := comment(rng, 70)
		if i%50 == 0 {
			cmt = "carefully Customer Complaints " + cmt
			if len(cmt) > 101 {
				cmt = cmt[:101]
			}
		}
		return []types.Datum{
			types.NewInt32(key),
			types.NewChar(fmt.Sprintf("Supplier#%09d", key)),
			types.NewString(fmt.Sprintf("addr-%d %s", key, commentWords[rng.Intn(len(commentWords))])),
			types.NewInt32(nationkey),
			types.NewChar(phone(rng, nationkey)),
			types.NewFloat64(money(rng, -999.99, 9999.99)),
			types.NewString(cmt),
		}, true
	}
}

// PartName builds p_name: five color words (the q9/q20 pattern space).
func partName(rng *rand.Rand) string {
	out := ""
	for w := 0; w < 5; w++ {
		if w > 0 {
			out += " "
		}
		out += colors[rng.Intn(len(colors))]
	}
	return out
}

// PartRows returns the part stream.
func (g *Generator) PartRows() RowIter {
	rng := rand.New(rand.NewSource(104))
	n := g.NumPart()
	i := 0
	return func() ([]types.Datum, bool) {
		if i >= n {
			return nil, false
		}
		i++
		key := int32(i)
		mfgr := 1 + rng.Intn(5)
		brand := mfgr*10 + 1 + rng.Intn(5)
		ptype := typeSyllable1[rng.Intn(6)] + " " + typeSyllable2[rng.Intn(5)] + " " + typeSyllable3[rng.Intn(5)]
		container := containerSyllable1[rng.Intn(5)] + " " + containerSyllable2[rng.Intn(8)]
		return []types.Datum{
			types.NewInt32(key),
			types.NewString(partName(rng)),
			types.NewChar(fmt.Sprintf("Manufacturer#%d", mfgr)),
			types.NewChar(fmt.Sprintf("Brand#%d", brand)),
			types.NewString(ptype),
			types.NewInt32(int32(1 + rng.Intn(50))),
			types.NewChar(container),
			types.NewFloat64(900 + float64(key%200) + float64(key%1000)/10),
			types.NewString(comment(rng, 23)),
		}, true
	}
}

// PartSuppRows returns the partsupp stream: 4 suppliers per part.
func (g *Generator) PartSuppRows() RowIter {
	rng := rand.New(rand.NewSource(105))
	nPart := g.NumPart()
	nSupp := g.NumSupplier()
	part, within := 1, 0
	return func() ([]types.Datum, bool) {
		if part > nPart {
			return nil, false
		}
		// The spec's supplier spreading function keeps (part, supp) unique.
		supp := (part+within*(nSupp/4+1))%nSupp + 1
		row := []types.Datum{
			types.NewInt32(int32(part)),
			types.NewInt32(int32(supp)),
			types.NewInt32(int32(1 + rng.Intn(9999))),
			types.NewFloat64(money(rng, 1.00, 1000.00)),
			types.NewString(comment(rng, 199)),
		}
		within++
		if within == 4 {
			within = 0
			part++
		}
		return row, true
	}
}

// CustomerRows returns the customer stream.
func (g *Generator) CustomerRows() RowIter {
	rng := rand.New(rand.NewSource(106))
	n := g.NumCustomer()
	i := 0
	return func() ([]types.Datum, bool) {
		if i >= n {
			return nil, false
		}
		i++
		key := int32(i)
		nationkey := nations[rng.Intn(len(nations))].key
		return []types.Datum{
			types.NewInt32(key),
			types.NewString(fmt.Sprintf("Customer#%09d", key)),
			types.NewString(fmt.Sprintf("addr-%d", key)),
			types.NewInt32(nationkey),
			types.NewChar(phone(rng, nationkey)),
			types.NewFloat64(money(rng, -999.99, 9999.99)),
			types.NewChar(segments[rng.Intn(len(segments))]),
			types.NewString(comment(rng, 117)),
		}, true
	}
}

// Order is one generated order with its line items (used by the paired
// OrderRows/LineitemRows streams so o_totalprice and o_orderstatus are
// consistent with the lines).
type order struct {
	row   []types.Datum
	lines [][]types.Datum
}

// genOrder produces order i (1-based) and its lines.
func (g *Generator) genOrder(rng *rand.Rand, i int) order {
	key := int32(i)
	custkey := int32(rng.Intn(g.NumCustomer())/3*3 + 1) // skip 2 of every 3, like dbgen
	if custkey > int32(g.NumCustomer()) {
		custkey = 1
	}
	odate := startDate + int32(rng.Intn(int(endDate-startDate-121)))
	nLines := 1 + rng.Intn(7)
	total := 0.0
	allF, allO := true, true
	var lines [][]types.Datum
	for ln := 1; ln <= nLines; ln++ {
		partkey := int32(1 + rng.Intn(g.NumPart()))
		// One of the part's four suppliers.
		nSupp := g.NumSupplier()
		supp := (int(partkey)+rng.Intn(4)*(nSupp/4+1))%nSupp + 1
		qty := float64(1 + rng.Intn(50))
		price := (900 + float64(partkey%200) + float64(partkey%1000)/10) * qty / 10
		discount := float64(rng.Intn(11)) / 100
		tax := float64(rng.Intn(9)) / 100
		sdate := odate + int32(1+rng.Intn(121))
		cdate := odate + int32(30+rng.Intn(61))
		rdate := sdate + int32(1+rng.Intn(30))
		rf := "N"
		if rdate <= cutoff {
			if rng.Intn(2) == 0 {
				rf = "R"
			} else {
				rf = "A"
			}
		}
		ls := "O"
		if sdate <= cutoff {
			ls = "F"
			allO = false
		} else {
			allF = false
		}
		total += price * (1 + tax) * (1 - discount)
		lines = append(lines, []types.Datum{
			types.NewInt32(key),
			types.NewInt32(partkey),
			types.NewInt32(int32(supp)),
			types.NewInt32(int32(ln)),
			types.NewFloat64(qty),
			types.NewFloat64(price),
			types.NewFloat64(discount),
			types.NewFloat64(tax),
			types.NewChar(rf),
			types.NewChar(ls),
			types.NewDate(sdate),
			types.NewDate(cdate),
			types.NewDate(rdate),
			types.NewChar(shipInstructs[rng.Intn(4)]),
			types.NewChar(shipModes[rng.Intn(7)]),
			types.NewString(comment(rng, 44)),
		})
	}
	status := "P"
	if allF {
		status = "F"
	} else if allO {
		status = "O"
	}
	row := []types.Datum{
		types.NewInt32(key),
		types.NewInt32(custkey),
		types.NewChar(status),
		types.NewFloat64(total),
		types.NewDate(odate),
		types.NewChar(priorities[rng.Intn(5)]),
		types.NewChar(fmt.Sprintf("Clerk#%09d", 1+rng.Intn(maxInt(1, int(g.SF*1000))))),
		types.NewInt32(0),
		types.NewString(comment(rng, 79)),
	}
	return order{row: row, lines: lines}
}

// OrderRows returns the orders stream.
func (g *Generator) OrderRows() RowIter {
	rng := rand.New(rand.NewSource(107))
	n := g.NumOrders()
	i := 0
	return func() ([]types.Datum, bool) {
		if i >= n {
			return nil, false
		}
		i++
		return g.genOrder(rng, i).row, true
	}
}

// LineitemRows returns the lineitem stream, consistent with OrderRows
// (same seed regenerates the same orders).
func (g *Generator) LineitemRows() RowIter {
	rng := rand.New(rand.NewSource(107))
	n := g.NumOrders()
	i := 0
	var pending [][]types.Datum
	return func() ([]types.Datum, bool) {
		for len(pending) == 0 {
			if i >= n {
				return nil, false
			}
			i++
			pending = g.genOrder(rng, i).lines
		}
		row := pending[0]
		pending = pending[1:]
		return row, true
	}
}
