package tpch

import (
	"fmt"

	"microspec/internal/engine"
	"microspec/internal/profile"
)

// CreateSchema issues the TPC-H DDL on db (relation bees are created
// here, at schema-definition time, when the database is bee-enabled).
func CreateSchema(db *engine.DB) error {
	for _, ddl := range SchemaDDL() {
		if _, err := db.Exec(ddl); err != nil {
			return fmt.Errorf("tpch: %w", err)
		}
	}
	return nil
}

// Load populates all eight relations at the generator's scale factor and
// refreshes planner statistics. It returns the total rows loaded.
func Load(db *engine.DB, g *Generator, prof *profile.Counters) (int64, error) {
	streams := []struct {
		table string
		iter  RowIter
	}{
		{"region", g.RegionRows(0)},
		{"nation", g.NationRows(0)},
		{"supplier", g.SupplierRows()},
		{"part", g.PartRows()},
		{"partsupp", g.PartSuppRows()},
		{"customer", g.CustomerRows()},
		{"orders", g.OrderRows()},
		{"lineitem", g.LineitemRows()},
	}
	var total int64
	for _, s := range streams {
		n, err := db.BulkLoad(s.table, prof, s.iter)
		if err != nil {
			return total, fmt.Errorf("tpch: loading %s: %w", s.table, err)
		}
		total += n
	}
	return total, nil
}

// NewDatabase creates, populates, and warms a TPC-H database.
func NewDatabase(cfg engine.Config, sf float64) (*engine.DB, error) {
	db := engine.Open(cfg)
	if err := CreateSchema(db); err != nil {
		return nil, err
	}
	if _, err := Load(db, NewGenerator(sf), nil); err != nil {
		return nil, err
	}
	if err := db.WarmUp(); err != nil {
		return nil, err
	}
	return db, nil
}
