module microspec

go 1.22
