// Analytics: the paper's OLAP motivation. Load the same TPC-H data into
// a stock database and a bee-enabled one, run a few representative
// analytic queries on both, and compare run times and abstract
// instruction counts — a miniature of the paper's Figures 4 and 6.
package main

import (
	"fmt"
	"log"
	"time"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/profile"
	"microspec/internal/tpch"
)

func main() {
	const sf = 0.005
	fmt.Printf("loading TPC-H at SF %g twice (stock and bee-enabled)...\n\n", sf)
	stock, err := tpch.NewDatabase(engine.Config{Routines: core.Stock}, sf)
	if err != nil {
		log.Fatal(err)
	}
	bee, err := tpch.NewDatabase(engine.Config{Routines: core.AllRoutines}, sf)
	if err != nil {
		log.Fatal(err)
	}

	queries := tpch.Queries()
	picks := []int{1, 3, 6, 14} // pricing summary, shipping priority, revenue change, promo effect
	fmt.Printf("%-4s %12s %12s %9s %16s %16s %9s\n",
		"qry", "stock ms", "bee ms", "time Δ", "stock instrs", "bee instrs", "instr Δ")
	for _, qn := range picks {
		q := queries[qn]
		// Warm both, then measure the better of three interleaved runs.
		stockMs, beeMs := 1e18, 1e18
		for r := 0; r < 3; r++ {
			stockMs = min(stockMs, timeQuery(stock, q))
			beeMs = min(beeMs, timeQuery(bee, q))
		}
		sp, bp := &profile.Counters{}, &profile.Counters{}
		if _, err := stock.QueryProfiled(q, sp); err != nil {
			log.Fatal(err)
		}
		if _, err := bee.QueryProfiled(q, bp); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("q%-3d %12.2f %12.2f %8.1f%% %16d %16d %8.1f%%\n",
			qn, stockMs, beeMs, 100*(stockMs-beeMs)/stockMs,
			sp.Total(), bp.Total(),
			100*float64(sp.Total()-bp.Total())/float64(sp.Total()))
	}

	fmt.Printf("\nbee module after the run: %+v\n", bee.Module().Stats())
}

func timeQuery(db *engine.DB, q string) float64 {
	start := time.Now()
	if _, err := db.Query(q); err != nil {
		log.Fatal(err)
	}
	return float64(time.Since(start).Microseconds()) / 1000
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
