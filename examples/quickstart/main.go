// Quickstart: create a relation with a low-cardinality annotation, load
// some rows, and watch micro-specialization at work — the relation bee
// created at schema-definition time, the tuple bees created during
// inserts, and the query bee (EVP) created at plan time.
package main

import (
	"fmt"
	"log"

	"microspec/internal/core"
	"microspec/internal/engine"
)

func main() {
	// A bee-enabled database: every micro-specialization on.
	db := engine.Open(engine.Config{Routines: core.AllRoutines})

	// Schema definition creates the relation bee (the specialized GCL and
	// SCL routines). The LOWCARD annotation marks `gender` for tuple-bee
	// specialization: its value is stored once per distinct value in the
	// bee's data section, not in every tuple — the paper's §III example.
	mustExec(db, `create table people (
		id integer not null,
		age integer not null,
		gender char(1) not null lowcard,
		name varchar(40) not null,
		primary key (id))`)

	for i := 1; i <= 10000; i++ {
		g := "M"
		if i%2 == 0 {
			g = "F"
		}
		mustExec(db, fmt.Sprintf(
			"insert into people values (%d, %d, '%s', 'person-%d')",
			i, 20+i%50, g, i))
	}

	// The paper's example predicate: age <= 45. The planner asks the bee
	// module to compile it into an EVP query bee with the attribute
	// ordinal, operator, and constant baked in.
	res, err := db.Query("select count(*) from people where age <= 45 and gender = 'F'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("people with age <= 45 and gender = 'F': %v\n\n", res.Rows[0][0])

	st := db.Module().Stats()
	fmt.Printf("relation bees: %d (created at CREATE TABLE)\n", st.RelationBees)
	fmt.Printf("tuple bees:    %d (one per distinct gender, created during the inserts)\n", st.TupleBees)
	fmt.Printf("query bees:    %d (the compiled predicate, created at plan time)\n", st.QueryBees)
	fmt.Printf("bee calls:     SCL=%d GCL=%d EVP=%d\n\n", st.SCLCalls, st.GCLCalls, st.EVPCalls)

	// The generated GCL template, mirroring the paper's Listing 2: note
	// the constant offsets and the DATA_SECTION hole for gender.
	rel, err := db.Catalog().Lookup("people")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated GCL bee routine (pseudo-C template):")
	fmt.Print(db.Module().RelationBeeFor(rel).Source)
}

func mustExec(db *engine.DB, stmt string) {
	if _, err := db.Exec(stmt); err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
}
