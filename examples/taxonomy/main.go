// Taxonomy: a walking tour of the paper's Figure 1/2 — the three kinds
// of bees and when each is created along the timeline from schema
// definition to query execution, observed through the bee module's
// statistics, cache, and placement optimizer.
package main

import (
	"fmt"
	"log"

	"microspec/internal/core"
	"microspec/internal/engine"
)

func main() {
	db := engine.Open(engine.Config{Routines: core.AllRoutines})
	show := func(moment string) {
		st := db.Module().Stats()
		fmt.Printf("%-38s relation=%d tuple=%d query=%d\n",
			moment, st.RelationBees, st.TupleBees, st.QueryBees)
	}

	show("empty database:")

	// 1. Relation bees — created at schema definition time.
	mustExec(db, `create table orders_mini (
		ok integer not null,
		status char(1) not null lowcard,
		priority char(8) not null lowcard,
		comment varchar(60) not null,
		primary key (ok))`)
	show("after CREATE TABLE (relation bee):")

	// 2. Tuple bees — created during inserts, one per distinct
	// combination of the annotated attributes.
	for i := 1; i <= 100; i++ {
		status := []string{"O", "F", "P"}[i%3]
		prio := []string{"1-URGENT", "5-LOW"}[i%2]
		mustExec(db, fmt.Sprintf(
			"insert into orders_mini values (%d, '%s', '%s', 'order number %d')", i, status, prio, i))
	}
	show("after 100 inserts (3×2 tuple bees):")

	// 3. Query bees — created at plan time: EVP for the predicate, EVJ
	// for the join keys.
	mustExec(db, `create table lines_mini (
		lok integer not null,
		qty integer not null,
		primary key (lok, qty))`)
	for i := 1; i <= 100; i++ {
		mustExec(db, fmt.Sprintf("insert into lines_mini values (%d, %d)", i, i%7))
	}
	res, err := db.Query(`
		select count(*) from orders_mini, lines_mini
		where ok = lok and qty <= 3 and status = 'O'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("join result: %v rows matched\n", res.Rows[0][0])
	show("after planning a join query (EVP+EVJ):")

	// The bee cache holds every bee's executable form; flushing writes it
	// "to disk" alongside the relations.
	n := db.Module().Cache().Flush()
	fmt.Printf("\nbee cache: flushed %d bees to the on-disk cache\n", n)
	for _, e := range db.Module().Cache().Entries() {
		fmt.Printf("  %-10s %-50.50s %5dB\n", e.Kind, e.Name, e.Bytes)
	}
	fmt.Println(db.Module().Placement().Report())

	// The bee collector: dropping a relation garbage-collects its bees.
	mustExec(db, "drop table lines_mini")
	fmt.Printf("after DROP TABLE: %d bees remain in cache\n", db.Module().Cache().Len())
}

func mustExec(db *engine.DB, stmt string) {
	if _, err := db.Exec(stmt); err != nil {
		log.Fatalf("%s: %v", stmt, err)
	}
}
