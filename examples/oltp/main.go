// OLTP: the paper's TPC-C evaluation in miniature. Build two identically
// populated TPC-C databases — stock and bee-enabled — and run the same
// seeded transaction stream on both, comparing throughput for the
// paper's three mixes (§VI-C).
package main

import (
	"fmt"
	"log"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/tpcc"
)

func main() {
	cfg := tpcc.SmallConfig(1)
	fmt.Println("loading TPC-C (1 warehouse, laptop-scale) twice...")

	mixes := []struct {
		name string
		mix  tpcc.Mix
	}{
		{"default (45% NewOrder, 43% Payment)", tpcc.DefaultMix},
		{"query-only (OrderStatus + StockLevel)", tpcc.QueryOnlyMix},
		{"equal modifications and queries", tpcc.EqualMix},
	}

	const txns = 3000
	for _, m := range mixes {
		var tpm [2]float64
		for i, routines := range []core.RoutineSet{core.Stock, core.AllRoutines} {
			db, err := tpcc.NewDatabase(engine.Config{Routines: routines}, cfg)
			if err != nil {
				log.Fatal(err)
			}
			dr, err := tpcc.NewDriver(db, cfg, m.mix, 7, nil)
			if err != nil {
				log.Fatal(err)
			}
			st, err := dr.RunN(txns)
			if err != nil {
				log.Fatal(err)
			}
			tpm[i] = st.TPM()
			if i == 1 {
				fmt.Printf("\n%s:\n", m.name)
				fmt.Printf("  committed: %d (rolled back: %d)\n", st.Committed, st.RolledBack)
				for t := tpcc.TxnNewOrder; t <= tpcc.TxnStockLevel; t++ {
					if st.ByType[t] > 0 {
						fmt.Printf("  %-12s %6d\n", t, st.ByType[t])
					}
				}
			}
		}
		fmt.Printf("  throughput: stock %.0f tpm, bee %.0f tpm (%+.1f%%)\n",
			tpm[0], tpm[1], 100*(tpm[1]-tpm[0])/tpm[0])
	}
}
