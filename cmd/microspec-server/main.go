// Command microspec-server serves a bee-enabled database over TCP using
// the internal/wire protocol. It creates an in-memory database
// (optionally preloaded with TPC-H data), listens for client sessions,
// and shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// finish, new connections get a typed "shutting_down" error, and the
// final metrics snapshot is printed.
//
// With -faults the page store is wrapped in a seeded fault-injecting
// device (armed only after loading finishes), so clients exercise the
// engine's transient-fault retry and checksum paths — the CI server
// smoke test runs a loadgen burst against exactly this configuration.
//
// Usage:
//
//	microspec-server [-addr 127.0.0.1:5433] [-tpch 0.01] [-stock]
//	                 [-secret tok] [-maxconns 64] [-backlog 16]
//	                 [-faults] [-faultseed 1]
//	                 [-admin 127.0.0.1:6060] [-trace 1]
//
// With -admin the server also exposes the HTTP telemetry plane
// (/metrics, /traces, /bees, /slow, /debug/pprof). With -trace N the
// span recorder samples one request in N (client-supplied trace IDs are
// always recorded).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/server"
	"microspec/internal/storage/disk"
	"microspec/internal/tpch"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5433", "TCP listen address")
	sf := flag.Float64("tpch", 0, "preload TPC-H data at this scale factor (0 = empty database)")
	stock := flag.Bool("stock", false, "disable all micro-specialization (stock engine)")
	secret := flag.String("secret", "", "require this shared secret in the Hello handshake")
	maxConns := flag.Int("maxconns", 64, "maximum concurrent sessions")
	backlog := flag.Int("backlog", 16, "accepted connections allowed to wait for a session slot")
	helloTimeout := flag.Duration("hello-timeout", 5*time.Second, "accept-to-first-byte deadline")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "per-session idle deadline between requests")
	faults := flag.Bool("faults", false, "inject seeded disk faults (armed after data loading)")
	faultSeed := flag.Int64("faultseed", 1, "fault schedule seed (with -faults)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown drain budget")
	adminAddr := flag.String("admin", "", "HTTP admin/telemetry listen address (empty = disabled)")
	traceN := flag.Int("trace", 0, "sample 1-in-N requests into the trace ring (0 = tracing off)")
	flag.Parse()

	routines := core.AllRoutines
	if *stock {
		routines = core.Stock
	}
	var fd *disk.Faulty
	cfg := engine.Config{Routines: routines}
	if *faults {
		fc := disk.DefaultChaosFaults
		fc.Seed = *faultSeed
		fd = disk.NewFaulty(disk.NewManager(disk.LatencyModel{}), fc)
		cfg.Disk = fd
	}
	db := engine.Open(cfg)
	if *sf > 0 {
		fmt.Printf("loading TPC-H at SF %g...\n", *sf)
		if err := tpch.CreateSchema(db); err != nil {
			fatalf("tpch schema: %v", err)
		}
		if _, err := tpch.Load(db, tpch.NewGenerator(*sf), nil); err != nil {
			fatalf("tpch load: %v", err)
		}
	}
	if fd != nil {
		fd.SetEnabled(true)
		fmt.Printf("disk faults armed (seed %d)\n", *faultSeed)
	}

	srv, err := server.Listen(server.Config{
		Addr:          *addr,
		DB:            db,
		Secret:        *secret,
		MaxConns:      *maxConns,
		AcceptBacklog: *backlog,
		HelloTimeout:  *helloTimeout,
		IdleTimeout:   *idleTimeout,
	})
	if err != nil {
		fatalf("%v", err)
	}
	mode := "bee-enabled"
	if *stock {
		mode = "stock"
	}
	fmt.Printf("microspec-server (%s engine) listening on %s\n", mode, srv.Addr())

	if *traceN > 0 {
		db.Tracer().Enable(*traceN)
		fmt.Printf("tracing enabled (1 in %d requests)\n", *traceN)
	}
	var admin *server.Admin
	if *adminAddr != "" {
		admin, err = server.StartAdmin(*adminAddr, db)
		if err != nil {
			fatalf("admin: %v", err)
		}
		fmt.Printf("admin telemetry on http://%s (/metrics /traces /bees /slow /debug/pprof)\n", admin.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("\nshutting down (draining sessions)...")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "microspec-server: drain incomplete: %v\n", err)
	}
	if admin != nil {
		admin.Shutdown(ctx)
	}
	if fd != nil {
		fs := fd.FaultStats()
		fmt.Printf("injected faults: %d (read errs %d, bit flips %d, torn writes %d)\n",
			fs.Injected, fs.ReadErrs, fs.BitFlips, fs.TornWrites)
	}
	fmt.Print(db.MetricsSnapshot().Format())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "microspec-server: "+format+"\n", args...)
	os.Exit(1)
}
