// Command tpcc-bench regenerates the paper's §VI-C TPC-C throughput
// comparison: the default (modification-heavy) mix, the query-only mix,
// and the equal mix, each run as an identical seeded transaction stream
// on a stock and a bee-enabled database.
//
// Usage:
//
//	tpcc-bench [-w 1] [-txns 4000] [-rounds 3] [-workers 0] [-full] [-timeout 30s]
package main

import (
	"flag"
	"fmt"
	"os"

	"microspec/internal/harness"
)

func main() {
	warehouses := flag.Int("w", 1, "warehouse count")
	txns := flag.Int("txns", 4000, "transactions per timed round")
	rounds := flag.Int("rounds", 3, "timed rounds (interleaved between engines)")
	workers := flag.Int("workers", 0, "intra-query parallelism degree (0 = GOMAXPROCS, 1 = serial)")
	full := flag.Bool("full", false, "use the specification-sized population (default: laptop-scale)")
	timeout := flag.Duration("timeout", 0, "statement timeout per query on both engines (0 = none), e.g. 30s")
	flag.Parse()

	o := harness.DefaultTPCCOptions()
	o.Warehouses = *warehouses
	o.TxnsPerRound = *txns
	o.Rounds = *rounds
	o.Small = !*full
	o.Workers = *workers
	o.StatementTimeout = *timeout
	fmt.Printf("loading TPC-C (%d warehouse(s), small=%v) into stock and bee-enabled databases...\n",
		o.Warehouses, o.Small)
	res, err := harness.RunTPCC(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpcc-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(harness.FormatTPCC(res))
	// Per-bee benefit attribution from the bee engine of the last
	// scenario whose run drove a timed bee path. TPC-C's point
	// transactions resolve through index lookups, which skip the timed
	// batch-scan path — an empty table here is expected, not a bug.
	printed := false
	for i := len(res) - 1; i >= 0; i-- {
		if res[i].BeeBenefits != "" {
			fmt.Printf("\nbee engine, %q scenario:\n%s", res[i].Name, res[i].BeeBenefits)
			printed = true
			break
		}
	}
	if !printed {
		fmt.Println("\nper-bee benefit attribution: no bee ran on a timed batch path" +
			" (TPC-C point transactions use index lookups)")
	}
}
