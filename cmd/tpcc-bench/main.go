// Command tpcc-bench regenerates the paper's §VI-C TPC-C throughput
// comparison: the default (modification-heavy) mix, the query-only mix,
// and the equal mix, each run as an identical seeded transaction stream
// on a stock and a bee-enabled database.
//
// Usage:
//
//	tpcc-bench [-w 1] [-txns 4000] [-rounds 3] [-workers 0] [-full] [-timeout 30s]
//
// With -bench-json it instead runs the compiled-transactions comparison
// (E17) — statement-at-a-time vs whole-transaction bees at -sessions
// concurrent terminals — and writes BENCH_tpcc.json.
package main

import (
	"flag"
	"fmt"
	"os"

	"microspec/internal/harness"
)

func main() {
	warehouses := flag.Int("w", 1, "warehouse count")
	txns := flag.Int("txns", 4000, "transactions per timed round")
	rounds := flag.Int("rounds", 3, "timed rounds (interleaved between engines)")
	workers := flag.Int("workers", 0, "intra-query parallelism degree (0 = GOMAXPROCS, 1 = serial)")
	full := flag.Bool("full", false, "use the specification-sized population (default: laptop-scale)")
	timeout := flag.Duration("timeout", 0, "statement timeout per query on both engines (0 = none), e.g. 30s")
	benchJSON := flag.Bool("bench-json", false, "run the compiled-transactions comparison and write BENCH_tpcc.json")
	sessions := flag.Int("sessions", 8, "concurrent terminals per mode (with -bench-json)")
	perSession := flag.Int("txns-per-session", 1500, "transactions per terminal (with -bench-json)")
	jsonOut := flag.String("out", "BENCH_tpcc.json", "output path (with -bench-json)")
	flag.Parse()

	if *benchJSON {
		o := harness.DefaultTPCCTxnOptions()
		o.Warehouses = *warehouses
		o.Small = !*full
		o.Sessions = *sessions
		o.TxnsPerSession = *perSession
		fmt.Printf("compiled-transactions comparison: %d warehouse(s), %d sessions x %d txns per mode...\n",
			o.Warehouses, o.Sessions, o.TxnsPerSession)
		rep, err := harness.RunTPCCTxnBench(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpcc-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(harness.FormatTPCCTxn(rep))
		data, err := harness.MarshalTPCCTxn(rep)
		if err == nil {
			err = os.WriteFile(*jsonOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpcc-bench: write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
		return
	}

	o := harness.DefaultTPCCOptions()
	o.Warehouses = *warehouses
	o.TxnsPerRound = *txns
	o.Rounds = *rounds
	o.Small = !*full
	o.Workers = *workers
	o.StatementTimeout = *timeout
	fmt.Printf("loading TPC-C (%d warehouse(s), small=%v) into stock and bee-enabled databases...\n",
		o.Warehouses, o.Small)
	res, err := harness.RunTPCC(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpcc-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(harness.FormatTPCC(res))
	// Per-bee benefit attribution from the bee engine of the last
	// scenario whose run drove a timed bee path. TPC-C's point
	// transactions resolve through index lookups, which skip the timed
	// batch-scan path — an empty table here is expected, not a bug.
	printed := false
	for i := len(res) - 1; i >= 0; i-- {
		if res[i].BeeBenefits != "" {
			fmt.Printf("\nbee engine, %q scenario:\n%s", res[i].Name, res[i].BeeBenefits)
			printed = true
			break
		}
	}
	if !printed {
		fmt.Println("\nper-bee benefit attribution: no bee ran on a timed batch path" +
			" (TPC-C point transactions use index lookups)")
	}
}
