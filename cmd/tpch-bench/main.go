// Command tpch-bench regenerates the paper's TPC-H figures: per-query
// run-time improvement with a warm cache (Figure 4) and a cold cache
// (Figure 5), the reduction in instructions executed (Figure 6), the
// bee-routine ablation (Figure 7), and the tuple-bee storage report (E9).
// The scaling figure sweeps intra-query parallelism: each query timed at
// worker degrees 1..-scale-to on the bee engine (see EXPERIMENTS.md).
//
// Alongside the timing tables, -metrics dumps a MetricsSnapshot JSON for
// both engines so benchmark trajectories capture buffer hit rates and bee
// hit rates, not just wall-clock.
//
// Usage:
//
//	tpch-bench [-sf 0.01] [-runs 5] [-fig all|4|5|6|7|storage|scaling|bench] [-q 1,6,9]
//	           [-workers 0] [-scale-to 4] [-metrics out.json] [-timeout 30s]
//	           [-bench-json BENCH_tpch.json]
//
// The bench step writes BENCH_tpch.json: per-query wall-clock ns,
// result-row throughput, and steady-state allocation counts for both
// engines (see EXPERIMENTS.md E12).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"microspec/internal/harness"
	"microspec/internal/metrics"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	runs := flag.Int("runs", 5, "timed runs per query (highest/lowest dropped)")
	fig := flag.String("fig", "all", "which figure to regenerate: all, 4, 5, 6, 7, storage, scaling")
	qlist := flag.String("q", "", "comma-separated query subset, e.g. 1,6,14")
	workers := flag.Int("workers", 0, "intra-query parallelism degree for both engines (0 = GOMAXPROCS, 1 = serial)")
	scaleTo := flag.Int("scale-to", 4, "highest worker degree for the scaling figure")
	metricsOut := flag.String("metrics", "", "write both engines' MetricsSnapshot JSON to this file ('-' for stdout)")
	benchOut := flag.String("bench-json", "BENCH_tpch.json", "write per-query ns/rows-per-sec/allocs JSON to this file ('' to skip, '-' for stdout)")
	timeout := flag.Duration("timeout", 0, "statement timeout per query on both engines (0 = none), e.g. 30s")
	flag.Parse()

	o := harness.DefaultOptions()
	o.SF = *sf
	o.Runs = *runs
	o.Workers = *workers
	o.StatementTimeout = *timeout
	if *qlist != "" {
		for _, part := range strings.Split(*qlist, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 || n > 22 {
				fatalf("bad query number %q", part)
			}
			o.Queries = append(o.Queries, n)
		}
	}

	fmt.Printf("loading TPC-H at SF %g into stock and bee-enabled databases...\n", o.SF)
	stock, bee, err := harness.BuildTPCHPair(o)
	if err != nil {
		fatalf("%v", err)
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("4") {
		s, err := harness.RunTPCHRuntime(stock, bee, o, false)
		if err != nil {
			fatalf("figure 4: %v", err)
		}
		fmt.Println()
		fmt.Print(s.Format())
	}
	if want("5") {
		s, err := harness.RunTPCHRuntime(stock, bee, o, true)
		if err != nil {
			fatalf("figure 5: %v", err)
		}
		fmt.Println()
		fmt.Print(s.Format())
	}
	if want("6") {
		s, err := harness.RunTPCHInstructions(stock, bee, o)
		if err != nil {
			fatalf("figure 6: %v", err)
		}
		fmt.Println()
		fmt.Print(s.Format())
	}
	if want("7") {
		series, err := harness.RunAblation(stock, bee, o)
		if err != nil {
			fatalf("figure 7: %v", err)
		}
		for _, s := range series {
			fmt.Println()
			fmt.Print(s.Format())
		}
	}
	if want("scaling") {
		s, err := harness.RunScaling(bee, o, *scaleTo)
		if err != nil {
			fatalf("scaling: %v", err)
		}
		fmt.Println()
		fmt.Print(s.Format())
	}
	if want("storage") {
		rows, err := harness.RunStorageReport(stock, bee)
		if err != nil {
			fatalf("storage: %v", err)
		}
		fmt.Println()
		fmt.Print(harness.FormatStorage(rows))
		fmt.Println()
		fmt.Println(bee.Module().Placement().Report())
	}

	if *benchOut != "" && (*fig == "all" || *fig == "bench") {
		report, err := harness.RunTPCHBenchJSON(stock, bee, o)
		if err != nil {
			fatalf("bench-json: %v", err)
		}
		data, err := harness.MarshalBench(report)
		if err != nil {
			fatalf("bench-json: %v", err)
		}
		if *benchOut == "-" {
			os.Stdout.Write(data)
		} else {
			if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
				fatalf("bench-json: %v", err)
			}
			fmt.Printf("\nwrote per-query benchmark JSON to %s\n", *benchOut)
		}
	}

	if *metricsOut != "" {
		// The bee engine's per-bee benefit attribution rides along so the
		// metrics dump answers "which bee paid for itself" directly.
		if tbl := harness.FormatBeeBenefits(bee, 10); tbl != "" {
			fmt.Println()
			fmt.Print(tbl)
		}
		dump := map[string]metrics.Snapshot{
			"stock": stock.MetricsSnapshot(),
			"bee":   bee.MetricsSnapshot(),
		}
		data, err := json.MarshalIndent(dump, "", "  ")
		if err != nil {
			fatalf("metrics: %v", err)
		}
		data = append(data, '\n')
		if *metricsOut == "-" {
			os.Stdout.Write(data)
		} else {
			if err := os.WriteFile(*metricsOut, data, 0o644); err != nil {
				fatalf("metrics: %v", err)
			}
			fmt.Printf("\nwrote metrics snapshot to %s\n", *metricsOut)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tpch-bench: "+format+"\n", args...)
	os.Exit(1)
}
