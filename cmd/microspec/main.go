// Command microspec is an interactive SQL shell over the bee-enabled
// engine: it creates an in-memory database (optionally preloaded with
// TPC-H data), reads semicolon-terminated statements from stdin, and
// prints results. EXPLAIN <select> prints the plan; EXPLAIN ANALYZE
// <select> runs it and annotates every node with actual rows, loops, and
// time. PREPARE TRANSACTION name AS BEGIN; ...; COMMIT compiles a
// whole-transaction bee; \txn name [params...] executes it fused (and
// \txn alone lists the prepared transactions). Meta commands: \bees
// (bee-module statistics), \cache (bee cache contents and stats),
// \source <relation> (the generated GCL template), \metrics (unified
// metrics snapshot), \slow [ms] (slow-query log / threshold),
// \resetmetrics, \q.
//
// With -connect host:port the shell runs against a remote
// microspec-server over the wire protocol instead of an in-process
// database: statements execute remotely, EXPLAIN ANALYZE is served by
// the remote engine, and \set name value changes session-scoped
// settings (timeout_ms, workers, batch). Engine-introspection meta
// commands (\bees, \cache, ...) need the in-process engine and are
// unavailable remotely.
//
// Usage:
//
//	microspec [-tpch 0.01] [-stock] [-slowms 100]
//	microspec -connect host:port [-secret tok]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"microspec/internal/client"
	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/tpch"
	"microspec/internal/trace"
	"microspec/internal/types"
)

func main() {
	sf := flag.Float64("tpch", 0, "preload TPC-H data at this scale factor (0 = empty database)")
	stock := flag.Bool("stock", false, "disable all micro-specialization (stock engine)")
	slowMS := flag.Int("slowms", 100, "slow-query log threshold in milliseconds (0 disables)")
	connect := flag.String("connect", "", "run against a remote microspec-server at host:port")
	secret := flag.String("secret", "", "Hello secret for -connect")
	flag.Parse()

	if *connect != "" {
		conn, err := client.DialConfig(client.Config{Addr: *connect, Secret: *secret})
		if err != nil {
			fatalf("connect %s: %v", *connect, err)
		}
		defer conn.Close()
		fmt.Printf("microspec connected to %s (session %d) — end statements with ';', \\q to quit\n",
			*connect, conn.SessionID)
		repl(func(stmt string) { runRemote(conn, stmt) }, func(cmd string) bool { return metaRemote(conn, cmd) })
		return
	}

	routines := core.AllRoutines
	if *stock {
		routines = core.Stock
	}
	db, err := buildDB(routines, *sf)
	if err != nil {
		fatalf("%v", err)
	}
	db.SetSlowQueryThreshold(time.Duration(*slowMS) * time.Millisecond)
	mode := "bee-enabled"
	if *stock {
		mode = "stock"
	}
	fmt.Printf("microspec (%s engine) — end statements with ';', \\q to quit\n", mode)
	txns := map[string]*engine.TxnStmt{}
	repl(func(stmt string) { run(db, txns, stmt) }, func(cmd string) bool { return meta(db, txns, cmd) })
}

// repl reads semicolon-terminated statements from stdin, dispatching
// statements to runFn and backslash commands to metaFn (false = quit).
func repl(runFn func(string), metaFn func(string) bool) {
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("microspec> ")
		} else {
			fmt.Print("       ... ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !metaFn(trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			runFn(buf.String())
			buf.Reset()
		}
		prompt()
	}
}

// runRemote executes one statement over the wire. EXPLAIN ANALYZE runs
// remotely; plain EXPLAIN needs the in-process planner.
func runRemote(conn *client.Conn, stmt string) {
	trimmed := strings.TrimSuffix(strings.TrimSpace(stmt), ";")
	lower := strings.ToLower(trimmed)
	start := time.Now()
	if rest, analyze, ok := stripExplain(trimmed, lower); ok {
		if !analyze {
			fmt.Println("error: plain EXPLAIN is not available remotely (use EXPLAIN ANALYZE)")
			return
		}
		res, err := conn.QueryAnalyze(rest)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		fmt.Print(res.Analyze)
		fmt.Printf("(%d rows, %v)\n", len(res.Rows), time.Since(start).Round(time.Microsecond))
		return
	}
	res, err := conn.Query(trimmed)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	if len(res.Cols) > 0 {
		printRemoteResult(res)
		fmt.Printf("(%d rows, %v)\n", len(res.Rows), time.Since(start).Round(time.Microsecond))
		return
	}
	fmt.Printf("ok (%d rows affected, %v)\n", res.Affected, time.Since(start).Round(time.Microsecond))
}

func printRemoteResult(res *client.Result) {
	names := make([]string, len(res.Cols))
	for i, c := range res.Cols {
		names[i] = c.Name
	}
	fmt.Println(strings.Join(names, " | "))
	limit := len(res.Rows)
	if limit > 50 {
		limit = 50
	}
	for _, row := range res.Rows[:limit] {
		parts := make([]string, len(row))
		for i, d := range row {
			parts[i] = d.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if limit < len(res.Rows) {
		fmt.Printf("... (%d more rows)\n", len(res.Rows)-limit)
	}
}

// metaRemote handles the backslash commands that make sense over the
// wire: \set changes session settings, \q quits.
func metaRemote(conn *client.Conn, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\set":
		if len(fields) != 3 {
			fmt.Println("usage: \\set <timeout_ms|workers|batch> <value>")
			break
		}
		if err := conn.Set(fields[1], fields[2]); err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		fmt.Printf("%s = %s\n", fields[1], fields[2])
	default:
		fmt.Println("remote meta commands: \\set <name> <value> \\q  (engine introspection needs a local session)")
	}
	return true
}

func buildDB(routines core.RoutineSet, sf float64) (*engine.DB, error) {
	db := engine.Open(engine.Config{Routines: routines})
	if sf > 0 {
		fmt.Printf("loading TPC-H at SF %g...\n", sf)
		if err := tpch.CreateSchema(db); err != nil {
			return nil, err
		}
		if _, err := tpch.Load(db, tpch.NewGenerator(sf), nil); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func run(db *engine.DB, txns map[string]*engine.TxnStmt, stmt string) {
	trimmed := strings.TrimSpace(stmt)
	lower := strings.ToLower(trimmed)
	start := time.Now()
	if strings.HasPrefix(lower, "prepare transaction") {
		ts, err := db.PrepareTxn(strings.TrimSuffix(trimmed, ";"))
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		if old, ok := txns[ts.Name()]; ok {
			old.Close()
		}
		txns[ts.Name()] = ts
		fmt.Printf("transaction %q prepared (%d params) — run with \\txn %s [params...]\n",
			ts.Name(), ts.NumParams(), ts.Name())
		return
	}
	if rest, analyze, ok := stripExplain(trimmed, lower); ok {
		if analyze {
			out, res, err := db.ExplainAnalyzeQuery(rest)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				return
			}
			fmt.Print(out)
			fmt.Printf("(%d rows, %v)\n", len(res.Rows), time.Since(start).Round(time.Microsecond))
			return
		}
		out, err := db.ExplainQuery(rest)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		fmt.Print(out)
		return
	}
	if strings.HasPrefix(lower, "select") || strings.HasPrefix(lower, "with") {
		res, err := db.Query(trimmed)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		printResult(res)
		fmt.Printf("(%d rows, %v)\n", len(res.Rows), time.Since(start).Round(time.Microsecond))
		return
	}
	n, err := db.Exec(trimmed)
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	fmt.Printf("ok (%d rows affected, %v)\n", n, time.Since(start).Round(time.Microsecond))
}

// stripExplain detects a leading EXPLAIN [ANALYZE] and returns the rest
// of the statement.
func stripExplain(stmt, lower string) (rest string, analyze, ok bool) {
	const explainKw = "explain"
	if !strings.HasPrefix(lower, explainKw) {
		return "", false, false
	}
	rest = strings.TrimSpace(stmt[len(explainKw):])
	if len(rest) == len(stmt)-len(explainKw) && rest != "" {
		// No whitespace after the keyword: an identifier like "explains".
		return "", false, false
	}
	lowerRest := strings.ToLower(rest)
	if strings.HasPrefix(lowerRest, "analyze ") || strings.HasPrefix(lowerRest, "analyze\n") || strings.HasPrefix(lowerRest, "analyze\t") {
		return strings.TrimSpace(rest[len("analyze"):]), true, true
	}
	return rest, false, true
}

func printResult(res *engine.Result) {
	if len(res.Cols) == 0 {
		return
	}
	names := make([]string, len(res.Cols))
	for i, c := range res.Cols {
		names[i] = c.Name
	}
	fmt.Println(strings.Join(names, " | "))
	limit := len(res.Rows)
	if limit > 50 {
		limit = 50
	}
	for _, row := range res.Rows[:limit] {
		parts := make([]string, len(row))
		for i, d := range row {
			parts[i] = d.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if limit < len(res.Rows) {
		fmt.Printf("... (%d more rows)\n", len(res.Rows)-limit)
	}
}

func meta(db *engine.DB, txns map[string]*engine.TxnStmt, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\bees":
		st := db.Module().Stats()
		fmt.Printf("relation bees: %d, tuple bees: %d, query bees: %d, transaction bees: %d\n",
			st.RelationBees, st.TupleBees, st.QueryBees, st.TxnBees)
		fmt.Printf("calls: GCL=%d SCL=%d EVP=%d EVJ=%d EVA=%d\n", st.GCLCalls, st.SCLCalls, st.EVPCalls, st.EVJCalls, st.EVACalls)
		fmt.Println(db.Module().Placement().Report())
	case "\\cache":
		// Estimated time saved per bee (observed bee time scaled by the
		// stock-vs-bee cost ratio), joined onto the cache listing.
		saved := map[string]int64{}
		for _, b := range db.Module().BeeBenefits() {
			saved[b.Kind+"\x00"+b.Name] = b.EstSavedNs
		}
		for _, e := range db.Module().CacheEntries() {
			marker := ""
			if e.Quarantined {
				marker = " QUARANTINED"
			}
			// Advisor tier markers: pinned bees the advisor keeps hot,
			// demoted bees it evicted back to the stock path.
			switch e.Tier {
			case "pinned":
				marker += " PINNED"
			case "demoted":
				marker += " DEMOTED"
			}
			if ns := saved[e.Kind+"\x00"+e.Name]; ns > 0 {
				marker += fmt.Sprintf(" saved≈%v", time.Duration(ns).Round(time.Microsecond))
			}
			fmt.Printf("%-10s %-40s %5dB onDisk=%v%s\n", e.Kind, e.Name, e.Bytes, e.OnDisk, marker)
		}
		cs := db.Module().Cache().Stats()
		fmt.Printf("entries: mem=%d (%dB) disk=%d (%dB)\n", cs.MemEntries, cs.MemBytes, cs.DiskEntries, cs.DiskBytes)
		fmt.Printf("writes=%d hits=%d misses=%d evictions=%d\n", cs.Writes, cs.Hits, cs.Misses, cs.Evictions)
	case "\\advisor":
		if len(fields) > 1 && (fields[1] == "on" || fields[1] == "off") {
			db.SetAdvisorEnabled(fields[1] == "on")
		}
		st := db.Advisor().Snapshot()
		fmt.Printf("advisor: enabled=%v cycles=%d\n", st.Enabled, st.Cycles)
		if len(st.Decisions) == 0 {
			fmt.Println("no decisions yet")
		}
		for _, d := range st.Decisions {
			target := d.Name
			if d.Kind != "" {
				target = d.Kind + " " + d.Name
			}
			fmt.Printf("cycle %-4d %-12s %-44s %s\n", d.Cycle, d.Action, target, d.Reason)
		}
		for _, ti := range st.Tiers {
			fmt.Printf("tier %-9s heat=%-8.3g %-10s %s\n", ti.StateName, ti.Heat, ti.Kind, ti.Name)
		}
	case "\\metrics":
		fmt.Print(db.MetricsSnapshot().Format())
	case "\\slow":
		if len(fields) > 1 {
			var ms int
			if _, err := fmt.Sscanf(fields[1], "%d", &ms); err != nil {
				fmt.Println("usage: \\slow [threshold-ms]")
				break
			}
			db.SetSlowQueryThreshold(time.Duration(ms) * time.Millisecond)
			fmt.Printf("slow-query threshold set to %dms\n", ms)
			break
		}
		entries := db.SlowQueries()
		if len(entries) == 0 {
			fmt.Printf("no queries slower than %v logged\n", db.SlowQueryThreshold())
			break
		}
		for _, e := range entries {
			tid := ""
			if e.TraceID != 0 {
				tid = " trace=" + trace.IDString(e.TraceID)
			}
			fmt.Printf("%s %8s %8d rows [%s]%s %s\n",
				e.When.Format("15:04:05"), e.Duration.Round(time.Microsecond), e.Rows, e.Mode, tid,
				strings.Join(strings.Fields(e.SQL), " "))
		}
	case "\\timeout":
		if len(fields) > 1 {
			var ms int
			if _, err := fmt.Sscanf(fields[1], "%d", &ms); err != nil || ms < 0 {
				fmt.Println("usage: \\timeout [limit-ms]   (0 removes the limit)")
				break
			}
			db.SetStatementTimeout(time.Duration(ms) * time.Millisecond)
		}
		if d := db.StatementTimeout(); d > 0 {
			fmt.Printf("statement timeout: %v\n", d)
		} else {
			fmt.Println("statement timeout: none")
		}
	case "\\quarantine":
		st := db.Module().Stats()
		fmt.Printf("quarantined bees: %d now (%d total events)\n", st.QuarantinedNow, st.Quarantined)
		if len(fields) > 1 && fields[1] == "clear" {
			fmt.Printf("returned %d bees to service\n", db.Module().ClearQuarantine())
		}
	case "\\resetmetrics":
		db.ResetMetrics()
		fmt.Println("metrics reset")
	case "\\txn":
		if len(fields) < 2 {
			if len(txns) == 0 {
				fmt.Println("usage: \\txn <name> [params...]  (no transactions prepared; use PREPARE TRANSACTION ... )")
				break
			}
			for name, ts := range txns {
				fmt.Printf("%-20s %d params, %d executions\n", name, ts.NumParams(), ts.Executions())
			}
			break
		}
		ts, ok := txns[fields[1]]
		if !ok {
			fmt.Printf("error: no prepared transaction %q\n", fields[1])
			break
		}
		params := make([]types.Datum, 0, len(fields)-2)
		for _, f := range fields[2:] {
			params = append(params, parseParam(f))
		}
		start := time.Now()
		res, affected, err := ts.ExecTxn(params...)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		printResult(res)
		fmt.Printf("ok (%d rows affected, %v)\n", affected, time.Since(start).Round(time.Microsecond))
	case "\\explain":
		if len(fields) < 2 {
			fmt.Println("usage: \\explain [analyze] <select ...>")
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, "\\explain"))
		var out string
		var err error
		if strings.HasPrefix(strings.ToLower(rest), "analyze ") {
			out, _, err = db.ExplainAnalyzeQuery(strings.TrimSpace(rest[len("analyze"):]))
		} else {
			out, err = db.ExplainQuery(rest)
		}
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		fmt.Print(out)
	case "\\source":
		if len(fields) < 2 {
			fmt.Println("usage: \\source <relation>")
			break
		}
		rel, err := db.Catalog().Lookup(fields[1])
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		if rb := db.Module().RelationBeeFor(rel); rb != nil {
			fmt.Print(rb.Source)
		} else {
			fmt.Println("no relation bee (stock engine)")
		}
	default:
		fmt.Println("meta commands: \\bees \\cache \\advisor [on|off] \\txn [name params...] \\source <rel> \\explain <select> \\metrics \\slow [ms] \\timeout [ms] \\quarantine [clear] \\resetmetrics \\q")
	}
	return true
}

// parseParam turns one \txn argument into a datum: integer, float, or
// (optionally single-quoted) string.
func parseParam(s string) types.Datum {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return types.NewInt64(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return types.NewFloat64(f)
	}
	return types.NewString(strings.Trim(s, "'"))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "microspec: "+format+"\n", args...)
	os.Exit(1)
}
