// Command loadgen drives the network server with N concurrent client
// connections running a mixed workload — TPC-H point and range queries
// plus a TPC-C-Payment-shaped read/modify/write transaction — and
// reports throughput and latency percentiles per connection count,
// writing the results to BENCH_server.json.
//
// By default it starts an in-process server on loopback over a TPC-H
// database; -addr points it at an external microspec-server instead.
// The TPC-C tables are created as bench_* over the wire (TPC-H and
// TPC-C both own tables named "orders" and "customer", so the two
// schemas cannot coexist verbatim in one database).
//
// Every point read against the seeded bench_kv table is verified
// against its known value; -check makes any mismatch (or an in-process
// drain failure) a non-zero exit, which is how the CI smoke job asserts
// "zero mismatches, clean shutdown" — typically combined with -faults,
// which arms a seeded fault-injecting page store once setup finishes.
//
// Usage:
//
//	loadgen [-addr host:port] [-conns 1,4,16] [-dur 2s] [-tpch 0.01]
//	        [-faults] [-faultseed 1] [-check] [-out BENCH_server.json]
//	        [-admin 127.0.0.1:0] [-trace 1] [-txnbees]
//	        [-durable] [-naivesync] [-restart]
//
// With -txnbees each connection registers the Payment transaction as a
// server-side named transaction (PREPARE TRANSACTION) and fires it with
// a single ExecuteTxn frame — one round trip and one fused commit
// instead of four prepared-statement round trips, exercising the
// whole-transaction bee path end-to-end over the wire.
//
// With -durable the in-process server runs with write-ahead logging and
// group commit, and every round additionally reports fsyncs-per-commit
// (run once with -naivesync for the E16 baseline: one fsync per commit).
// With -restart (implies -durable) the run ends with the kill-and-restart
// experiment: crash the server, recover twice from the same survivor
// image — once with the bee-cache warm restart, once cold
// (NoManifestReplay) — and report the first-execution p50 of a prepared
// statement set for pre-kill, warm-restart, and cold-restart servers.
// Under -check, warm-restart first-execution p50 must stay within 2x of
// the pre-kill p50.
//
// With -trace N the in-process server samples 1-in-N requests into its
// trace ring and loadgen fires a few client-traced probe queries, printing
// "client trace <id>" lines whose IDs match the server-side span trees at
// the admin plane's /traces endpoint (started with -admin; against an
// external server, start it with its own -admin/-trace flags instead).
//
// With -shift the run ends with the adaptive-specialization experiment
// (E18): the advisor is enabled on the live server with a short decision
// interval, a hot set of Q6-shaped lineitem predicates runs until the
// advisor promotes it, then the hot set rotates — the old predicates
// vanish from the workload and a disjoint set takes over. The report
// captures pre-shift steady throughput, the post-shift dip, the
// recovered tail once the advisor has re-specialized, and the
// statically-specialized ceiling, plus the advisor's promotion/demotion
// counts. Every query in the experiment is verified against expected
// aggregates computed on the stock path; under -check, any mismatch —
// or a run where the advisor never promoted or never demoted — exits
// non-zero.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"microspec/internal/advisor"
	"microspec/internal/client"
	"microspec/internal/core"
	"microspec/internal/engine"
	"microspec/internal/harness"
	"microspec/internal/server"
	"microspec/internal/storage/disk"
	"microspec/internal/tpch"
	"microspec/internal/types"
	"microspec/internal/wire"
)

const (
	kvRows      = 2000
	warehouses  = 2
	districts   = 10
	custPerDist = 30
)

// Round is one measured workload burst at a fixed connection count.
type Round struct {
	Name       string  `json:"name"`
	Conns      int     `json:"conns"`
	Ops        int64   `json:"ops"`
	Errors     int64   `json:"errors"`
	Conflicts  int64   `json:"conflicts,omitempty"`
	Mismatches int64   `json:"mismatches"`
	Seconds    float64 `json:"seconds"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	P50us      float64 `json:"p50_us"`
	P95us      float64 `json:"p95_us"`
	P99us      float64 `json:"p99_us"`
	// FsyncsPerCommit is the log syncs the round cost per acknowledged
	// commit (in-process -durable runs only): ~1.0 under -naivesync, and
	// dropping well below 1.0 as group commit batches concurrent
	// committers into shared syncs.
	FsyncsPerCommit float64 `json:"fsyncs_per_commit,omitempty"`
}

// Report is the BENCH_server.json document.
type Report struct {
	Bench           string           `json:"bench"`
	When            string           `json:"when"`
	ScaleFactor     float64          `json:"scale_factor"`
	Faults          bool             `json:"faults"`
	TxnBees         bool             `json:"txn_bees,omitempty"`
	Durable         bool             `json:"durable,omitempty"`
	NaiveSync       bool             `json:"naive_sync,omitempty"`
	IOLatencyUS     float64          `json:"io_latency_us,omitempty"`
	Scaling         *Scaling         `json:"scaling,omitempty"`
	Rounds          []Round          `json:"rounds"`
	PreparedVsAdhoc *PreparedVsAdhoc `json:"prepared_vs_adhoc,omitempty"`
	Shift           *ShiftReport     `json:"shift,omitempty"`
	Restart         *RestartReport   `json:"restart,omitempty"`
	FaultStats      *disk.FaultStats `json:"fault_stats,omitempty"`
}

// ShiftReport is the E18 adaptive-specialization experiment: throughput
// through a mid-run rotation of the hot predicate set, with the advisor
// re-specializing the engine online (no restart).
type ShiftReport struct {
	PhaseSeconds float64 `json:"phase_seconds"`
	// PhaseAOpsSec is steady throughput on the first hot set after the
	// advisor specialized it.
	PhaseAOpsSec float64 `json:"phase_a_ops_per_sec"`
	// DipOpsSec is throughput right after the shift, while the new hot
	// set still runs interpreted.
	DipOpsSec float64 `json:"dip_ops_per_sec"`
	// PostShiftOpsSec is the recovered tail: the new hot set after the
	// advisor promoted it.
	PostShiftOpsSec float64 `json:"post_shift_ops_per_sec"`
	// StaticOpsSec is the statically-specialized ceiling: the same new
	// hot set with the advisor off (compile-on-first-use), measured warm.
	StaticOpsSec float64 `json:"static_ops_per_sec"`
	// RecoveryRatio = PostShiftOpsSec / StaticOpsSec (E18's headline:
	// within 10% of the ceiling means ≥ 0.9).
	RecoveryRatio float64 `json:"recovery_ratio"`
	Promotions    int64   `json:"promotions"`
	Demotions     int64   `json:"demotions"`
	Cycles        int64   `json:"cycles"`
	Mismatches    int64   `json:"mismatches"`
}

// RestartReport is the kill-and-restart experiment (E16's warm-restart
// half): first-execution latency of a fixed prepared-statement set
// against the pre-kill server, a recovered server with the bee-cache
// warm restart, and a recovered server with manifest replay disabled.
type RestartReport struct {
	Statements     int     `json:"statements"`
	PreKillP50us   float64 `json:"pre_kill_p50_us"`
	WarmP50us      float64 `json:"warm_restart_p50_us"`
	ColdP50us      float64 `json:"cold_restart_p50_us"`
	WarmOverPre    float64 `json:"warm_over_pre"`
	ColdOverWarm   float64 `json:"cold_over_warm"`
	PreparedWarmed int     `json:"prepared_warmed"`
	RecoveryMS     float64 `json:"recovery_ms"`
}

// Scaling summarizes the connection sweep: throughput at the smallest
// and largest connection counts and their ratio (the E15 headline
// number).
type Scaling struct {
	BaseConns  int     `json:"base_conns"`
	BaseOpsSec float64 `json:"base_ops_per_sec"`
	TopConns   int     `json:"top_conns"`
	TopOpsSec  float64 `json:"top_ops_per_sec"`
	Speedup    float64 `json:"speedup"`
}

// PreparedVsAdhoc compares point-query throughput with and without
// server-side prepared statements.
type PreparedVsAdhoc struct {
	Conns         int     `json:"conns"`
	AdhocOpsSec   float64 `json:"adhoc_ops_per_sec"`
	PrepareOpsSec float64 `json:"prepared_ops_per_sec"`
	Speedup       float64 `json:"speedup"`
}

func main() {
	addr := flag.String("addr", "", "server address; empty starts an in-process loopback server")
	connsFlag := flag.String("conns", "1,4,16", "comma-separated connection counts to sweep")
	dur := flag.Duration("dur", 2*time.Second, "duration of each measured round")
	sf := flag.Float64("tpch", 0.01, "TPC-H scale factor for the in-process server")
	secret := flag.String("secret", "", "Hello secret for -addr servers")
	seed := flag.Int64("seed", 42, "workload RNG seed")
	faults := flag.Bool("faults", false, "arm seeded disk faults on the in-process server after setup")
	faultSeed := flag.Int64("faultseed", 1, "fault schedule seed (with -faults)")
	check := flag.Bool("check", false, "exit non-zero on any mismatch or unclean shutdown")
	ioLat := flag.Duration("latency", 0, "per-page disk read latency on the in-process server, really slept so connections overlap I/O (0 = warm in-memory mode)")
	minScale := flag.Float64("minscale", 0, "minimum (top conns ops/s) / (base conns ops/s) ratio; below it the run exits non-zero (0 = no scaling gate)")
	poolPages := flag.Int("poolpages", 0, "in-process buffer pool size in pages (0 = engine default; -faults defaults to 512 so the fault-injecting device sees real I/O)")
	out := flag.String("out", "BENCH_server.json", "output report path (empty disables)")
	adminAddr := flag.String("admin", "", "HTTP admin/telemetry address for the in-process server (empty = disabled)")
	traceN := flag.Int("trace", 0, "sample 1-in-N requests on the in-process server and fire client-traced probes (0 = off)")
	durable := flag.Bool("durable", false, "run the in-process server with write-ahead logging and group commit; rounds report fsyncs-per-commit")
	naiveSync := flag.Bool("naivesync", false, "with -durable: one fsync per commit instead of group commit (the E16 baseline)")
	fsyncLat := flag.Duration("fsynclat", 100*time.Microsecond, "with -durable: simulated fsync cost, really slept so group commit has something to amortize (0 = free syncs)")
	restart := flag.Bool("restart", false, "end with the kill-and-restart experiment: warm vs cold prepared first-execution p50 (implies -durable)")
	shift := flag.Bool("shift", false, "end with the adaptive-specialization experiment: rotate the hot predicate set mid-run and let the advisor re-specialize online (E18)")
	txnBees := flag.Bool("txnbees", false, "run the Payment transaction through a server-side transaction bee: one ExecuteTxn round trip instead of four statement round trips")
	flag.Parse()
	if *restart {
		*durable = true
	}
	if *durable && *faults {
		fatalf("-durable and -faults are mutually exclusive (the faulty device has no log)")
	}
	if (*durable || *restart) && *addr != "" {
		fatalf("-durable/-restart need the in-process server (drop -addr)")
	}
	if *shift && *addr != "" {
		fatalf("-shift needs the in-process server (drop -addr)")
	}

	connCounts, err := parseConns(*connsFlag)
	if err != nil {
		fatalf("%v", err)
	}

	// In-process server unless pointed elsewhere.
	var srv *server.Server
	var admin *server.Admin
	var db *engine.DB
	var fd *disk.Faulty
	var dm *disk.Manager     // the log-capable device under -durable
	var engCfg engine.Config // kept for the -restart recovery configs
	var latDev disk.Device   // armed with the -latency model after setup
	target := *addr
	if target == "" {
		cfg := engine.Config{Routines: core.AllRoutines, PoolPages: *poolPages}
		if *faults && *poolPages == 0 {
			cfg.PoolPages = 512
		}
		if *ioLat > 0 && *poolPages == 0 && !*faults {
			// I/O-bound mode wants a pool small enough that the workload
			// actually misses; connections then scale by overlapping the
			// slept page reads.
			cfg.PoolPages = 128
		}
		if *faults {
			fc := disk.DefaultChaosFaults
			fc.Seed = *faultSeed
			fd = disk.NewFaulty(disk.NewManager(disk.LatencyModel{}), fc)
			cfg.Disk = fd
			latDev = fd
		} else if *ioLat > 0 {
			dm = disk.NewManager(disk.LatencyModel{})
			cfg.Disk = dm
			latDev = dm
		} else if *durable {
			// Setup loads warm; the fsync cost arms after (below), so bulk
			// load does not crawl through slept checkpoint syncs.
			dm = disk.NewManager(disk.LatencyModel{})
			cfg.Disk = dm
		}
		if *durable {
			cfg.Durability = engine.DurabilityConfig{WAL: true, NaiveSync: *naiveSync}
		}
		if *shift {
			// A short decision interval keeps the experiment brief, and
			// pinning is effectively disabled so the abandoned hot set
			// stays eligible for cold demotion after the shift.
			cfg.Advisor = advisor.Config{Interval: 200 * time.Millisecond, PinStreak: 1 << 20}
		}
		engCfg = cfg
		db = engine.Open(cfg)
		fmt.Printf("loading TPC-H at SF %g...\n", *sf)
		if err := tpch.CreateSchema(db); err != nil {
			fatalf("tpch schema: %v", err)
		}
		if _, err := tpch.Load(db, tpch.NewGenerator(*sf), nil); err != nil {
			fatalf("tpch load: %v", err)
		}
		srv, err = server.Listen(server.Config{Addr: "127.0.0.1:0", DB: db, MaxConns: 64})
		if err != nil {
			fatalf("listen: %v", err)
		}
		target = srv.Addr().String()
		fmt.Printf("in-process server on %s\n", target)
		if *traceN > 0 {
			db.Tracer().Enable(*traceN)
			fmt.Printf("tracing enabled (1 in %d requests)\n", *traceN)
		}
		if *adminAddr != "" {
			admin, err = server.StartAdmin(*adminAddr, db)
			if err != nil {
				fatalf("admin: %v", err)
			}
			fmt.Printf("admin telemetry on http://%s (/metrics /traces /bees)\n", admin.Addr())
		}
	}

	if err := setupBenchTables(target, *secret); err != nil {
		fatalf("setup: %v", err)
	}
	if *txnBees {
		fmt.Println("payment via transaction bees: one ExecuteTxn round trip per Payment")
	}
	if fd != nil {
		fd.SetEnabled(true)
		fmt.Printf("disk faults armed (seed %d)\n", *faultSeed)
	}
	if latDev != nil && *ioLat > 0 {
		// Setup (TPC-H load, bench seeding) ran warm; measured rounds pay
		// real, overlappable I/O waits.
		m := disk.LatencyModel{ReadPerPage: *ioLat, WritePerPage: *ioLat * 6 / 5, Sleep: true}
		if *durable {
			m.LogSyncTime = *fsyncLat
		}
		latDev.SetLatency(m)
		fmt.Printf("I/O-bound mode armed: %v per page read (slept)\n", *ioLat)
	} else if dm != nil && *durable && *fsyncLat > 0 {
		dm.SetLatency(disk.LatencyModel{LogSyncTime: *fsyncLat, Sleep: true})
		fmt.Printf("durable mode armed: %v per log fsync (slept), %s\n", *fsyncLat,
			map[bool]string{false: "group commit", true: "naive sync-per-commit"}[*naiveSync])
	}

	rep := &Report{
		Bench:       "server",
		When:        time.Now().UTC().Format(time.RFC3339),
		ScaleFactor: *sf,
		Faults:      *faults,
		TxnBees:     *txnBees,
		Durable:     *durable,
		NaiveSync:   *durable && *naiveSync,
		IOLatencyUS: float64(*ioLat) / float64(time.Microsecond),
	}
	// walCounters reads the cumulative commit/fsync counters so each round
	// can report the fsyncs its commits actually cost (E16's group-commit
	// vs naive-sync headline).
	walCounters := func() (commits, fsyncs int64) {
		if db == nil || !*durable {
			return 0, 0
		}
		snap := db.MetricsSnapshot()
		return snap.Counters["wal.commits"], snap.Counters["wal.fsyncs"]
	}
	nParts := tpch.NewGenerator(*sf).NumPart()
	var mismatches int64
	for _, n := range connCounts {
		c0, f0 := walCounters()
		r := runMixed(target, *secret, n, *dur, *seed, nParts, *txnBees)
		if c1, f1 := walCounters(); c1 > c0 {
			r.FsyncsPerCommit = float64(f1-f0) / float64(c1-c0)
		}
		mismatches += r.Mismatches
		rep.Rounds = append(rep.Rounds, r)
		fmt.Printf("mixed  conns=%-3d %8.0f ops/s  p50=%6.0fµs p95=%6.0fµs p99=%6.0fµs  errors=%d conflicts=%d mismatches=%d",
			n, r.OpsPerSec, r.P50us, r.P95us, r.P99us, r.Errors, r.Conflicts, r.Mismatches)
		if r.FsyncsPerCommit > 0 {
			fmt.Printf("  fsyncs/commit=%.3f", r.FsyncsPerCommit)
		}
		fmt.Println()
	}
	scaleOK := true
	if len(rep.Rounds) >= 2 {
		base, top := rep.Rounds[0], rep.Rounds[0]
		for _, r := range rep.Rounds[1:] {
			if r.Conns < base.Conns {
				base = r
			}
			if r.Conns > top.Conns {
				top = r
			}
		}
		if top.Conns > base.Conns && base.OpsPerSec > 0 {
			sc := &Scaling{BaseConns: base.Conns, BaseOpsSec: base.OpsPerSec,
				TopConns: top.Conns, TopOpsSec: top.OpsPerSec,
				Speedup: top.OpsPerSec / base.OpsPerSec}
			rep.Scaling = sc
			fmt.Printf("scaling: %d conns → %d conns = %.2fx throughput\n",
				base.Conns, top.Conns, sc.Speedup)
			if *minScale > 0 && sc.Speedup < *minScale {
				scaleOK = false
				fmt.Fprintf(os.Stderr, "loadgen: scaling %.2fx below required %.2fx\n",
					sc.Speedup, *minScale)
			}
		}
	}

	pva := runPreparedVsAdhoc(target, *secret, 4, *dur, *seed, nParts)
	rep.PreparedVsAdhoc = pva
	fmt.Printf("point queries: prepared %.0f ops/s vs ad-hoc %.0f ops/s (%.2fx)\n",
		pva.PrepareOpsSec, pva.AdhocOpsSec, pva.Speedup)

	// Client-traced probes: the printed IDs are findable verbatim at the
	// admin plane's /traces?id= endpoint as full server-side span trees.
	if *traceN > 0 {
		runTracedProbes(target, *secret, *seed)
	}

	if db != nil {
		fmt.Print(harness.FormatBeeBenefits(db, 10))
	}
	shiftOK := true
	if *shift && db != nil {
		sr := runShift(db, target, *secret, *dur)
		rep.Shift = sr
		mismatches += sr.Mismatches
		if *check && (sr.Promotions < 1 || sr.Demotions < 1) {
			shiftOK = false
			fmt.Fprintf(os.Stderr, "loadgen: shift experiment saw %d promotions, %d demotions (want >= 1 each)\n",
				sr.Promotions, sr.Demotions)
		}
	}
	restartOK := true
	if *restart && srv != nil {
		rr := runRestart(db, srv, dm, engCfg, *secret, *seed, nParts)
		rep.Restart = rr
		srv, db = nil, nil // runRestart crashed and drained the original pair
		if *check && rr.WarmOverPre > 2.0 {
			restartOK = false
			fmt.Fprintf(os.Stderr, "loadgen: warm-restart p50 %.0fµs is %.2fx pre-kill %.0fµs (limit 2x)\n",
				rr.WarmP50us, rr.WarmOverPre, rr.PreKillP50us)
		}
	}
	cleanShutdown := true
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			cleanShutdown = false
			fmt.Fprintf(os.Stderr, "loadgen: shutdown: %v\n", err)
		} else {
			fmt.Println("server drained cleanly")
		}
	}
	if admin != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		admin.Shutdown(ctx)
		cancel()
	}
	if fd != nil {
		fs := fd.FaultStats()
		rep.FaultStats = &fs
		fmt.Printf("injected faults: %d (read errs %d, bit flips %d, torn writes %d)\n",
			fs.Injected, fs.ReadErrs, fs.BitFlips, fs.TornWrites)
	}

	if *out != "" {
		buf, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatalf("write %s: %v", *out, err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if !scaleOK {
		fatalf("scaling gate failed")
	}
	if !restartOK {
		fatalf("check failed: warm restart slower than 2x pre-kill")
	}
	if !shiftOK {
		fatalf("check failed: advisor never re-specialized across the shift")
	}
	if *check {
		if mismatches > 0 {
			fatalf("check failed: %d mismatches", mismatches)
		}
		if !cleanShutdown {
			fatalf("check failed: unclean shutdown")
		}
		fmt.Println("check passed: zero mismatches, clean shutdown")
	}
}

// restartTexts is the prepared-statement set the -restart experiment
// times: distinct texts (each is its own plan and query-bee cache entry)
// with real planning and bee-compilation cost behind the first prepare.
func restartTexts() []string {
	out := make([]string, 0, 16)
	for i := 0; i < 16; i++ {
		out = append(out, fmt.Sprintf(
			"select count(*), sum(l_extendedprice) from lineitem where l_partkey = $1 and l_quantity < %d", i+3))
	}
	return out
}

// firstExecLatencies opens one connection (retrying through a recovering
// server) and, per text, times Prepare + first Execute — the latency a
// returning client pays for a "hot" statement right after a restart.
func firstExecLatencies(addr, secret string, seed int64, nParts int) ([]time.Duration, error) {
	c, err := client.DialConfig(client.Config{Addr: addr, Secret: secret, RetryRecovering: 30 * time.Second})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(seed))
	var lats []time.Duration
	for _, text := range restartTexts() {
		k := 1 + rng.Intn(nParts)
		t0 := time.Now()
		st, err := c.Prepare(text)
		if err != nil {
			return nil, err
		}
		if _, err := st.Query(types.NewInt64(int64(k))); err != nil {
			return nil, err
		}
		lats = append(lats, time.Since(t0))
		st.Close()
	}
	return lats, nil
}

// recoverAndMeasure builds a server over one survivor image, opening the
// listener before replay finishes (engine.RecoverDeferred — early dials
// get the typed recovering error and the client driver retries), then
// times the statement set's first executions against it.
func recoverAndMeasure(cfg engine.Config, img *disk.Manager, secret string, seed int64, nParts int) (float64, engine.RecoveryStats, error) {
	cfg.Disk = img
	rdb, finish := engine.RecoverDeferred(cfg)
	rsrv, err := server.Listen(server.Config{Addr: "127.0.0.1:0", DB: rdb, MaxConns: 64, Secret: secret})
	if err != nil {
		return 0, engine.RecoveryStats{}, err
	}
	done := make(chan error, 1)
	go func() { done <- finish() }()
	lats, lerr := firstExecLatencies(rsrv.Addr().String(), secret, seed, nParts)
	if err := <-done; err != nil {
		return 0, engine.RecoveryStats{}, fmt.Errorf("recovery: %w", err)
	}
	stats := rdb.RecoveryStats()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	rsrv.Shutdown(ctx)
	cancel()
	rdb.Close()
	if lerr != nil {
		return 0, stats, lerr
	}
	p50, _, _ := percentiles(lats)
	return p50, stats, nil
}

// runRestart is the kill-and-restart experiment: measure pre-kill
// first-execution p50, checkpoint (so the manifest carries the statement
// set), crash, then recover the same survivor state twice — warm
// (manifest replay re-plans and re-compiles every prepared text before
// the listener admits clients) and cold (NoManifestReplay) — measuring
// the same statement set against each.
func runRestart(db *engine.DB, srv *server.Server, dm *disk.Manager, cfg engine.Config, secret string, seed int64, nParts int) *RestartReport {
	rr := &RestartReport{Statements: len(restartTexts())}
	addr := srv.Addr().String()
	// Populate the plan and bee caches, then measure the steady state a
	// client sees pre-kill.
	if _, err := firstExecLatencies(addr, secret, seed, nParts); err != nil {
		fatalf("restart warmup: %v", err)
	}
	lats, err := firstExecLatencies(addr, secret, seed+1, nParts)
	if err != nil {
		fatalf("restart pre-kill measure: %v", err)
	}
	rr.PreKillP50us, _, _ = percentiles(lats)
	if err := db.Checkpoint(); err != nil {
		fatalf("restart checkpoint: %v", err)
	}

	db.SimulateCrash()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv.Shutdown(ctx)
	cancel()
	warmImg, coldImg := dm.Crash(0), dm.Crash(0)

	var stats engine.RecoveryStats
	rr.WarmP50us, stats, err = recoverAndMeasure(cfg, warmImg, secret, seed+2, nParts)
	if err != nil {
		fatalf("warm restart: %v", err)
	}
	rr.PreparedWarmed = stats.PreparedWarm
	rr.RecoveryMS = float64(stats.Elapsed) / float64(time.Millisecond)
	coldCfg := cfg
	coldCfg.Durability.NoManifestReplay = true
	rr.ColdP50us, _, err = recoverAndMeasure(coldCfg, coldImg, secret, seed+2, nParts)
	if err != nil {
		fatalf("cold restart: %v", err)
	}
	if rr.PreKillP50us > 0 {
		rr.WarmOverPre = rr.WarmP50us / rr.PreKillP50us
	}
	if rr.WarmP50us > 0 {
		rr.ColdOverWarm = rr.ColdP50us / rr.WarmP50us
	}
	fmt.Printf("restart: first-exec p50 pre-kill=%.0fµs warm=%.0fµs cold=%.0fµs (%d stmts re-warmed, recovery %.1fms)\n",
		rr.PreKillP50us, rr.WarmP50us, rr.ColdP50us, rr.PreparedWarmed, rr.RecoveryMS)
	fmt.Printf("restart ratios: warm/pre=%.2fx cold/warm=%.2fx\n", rr.WarmOverPre, rr.ColdOverWarm)
	return rr
}

// shiftTexts returns the two disjoint hot predicate sets of the E18
// experiment: Q6-shaped lineitem aggregates whose fixed constants make
// each text its own predicate bee. Phase A's set is hot first; the
// shift replaces it wholesale with phase B's.
func shiftTexts() (a, b []string) {
	a = []string{
		"select count(*), sum(l_extendedprice) from lineitem where l_quantity < 24.0",
		"select count(*), sum(l_extendedprice) from lineitem where l_quantity >= 45.0",
		"select count(*), sum(l_quantity) from lineitem where l_discount < 0.03",
		"select count(*), sum(l_quantity) from lineitem where l_tax >= 0.07",
	}
	b = []string{
		"select count(*), sum(l_extendedprice) from lineitem where l_quantity < 11.0",
		"select count(*), sum(l_extendedprice) from lineitem where l_tax < 0.02",
		"select count(*), sum(l_quantity) from lineitem where l_discount >= 0.08",
		"select count(*), sum(l_quantity) from lineitem where l_extendedprice < 20000.0",
	}
	return a, b
}

// sumClose compares float aggregates with a relative tolerance: parallel
// scans may sum partitions in a different order than the serial stock
// pass that computed the expectation.
func sumClose(got, want float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	scale := want
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return diff <= 1e-9*scale
}

// runShift is the E18 adaptive-specialization experiment: enable the
// advisor on the live server, let it specialize the phase-A hot set,
// rotate the hot set to phase B mid-run, and measure the dip and the
// recovered tail against the statically-specialized ceiling. Every query
// is verified against aggregates computed on the stock path first.
func runShift(db *engine.DB, addr, secret string, dur time.Duration) *ShiftReport {
	phase := dur
	if phase < 2*time.Second {
		phase = 2 * time.Second // demotion needs heat to decay through several cycles
	}
	sr := &ShiftReport{PhaseSeconds: phase.Seconds()}
	hotA, hotB := shiftTexts()

	c, err := client.DialConfig(client.Config{Addr: addr, Secret: secret})
	if err != nil {
		fatalf("shift dial: %v", err)
	}
	defer c.Close()

	// Raise the gate first, then compute expected aggregates: with the
	// advisor up these run interpreted, so the expectations come from the
	// stock path every later execution is checked against.
	db.SetAdvisorEnabled(true)
	snap0 := db.MetricsSnapshot()
	type agg struct {
		count int64
		sum   float64
	}
	expect := make(map[string]agg)
	for _, q := range append(append([]string{}, hotA...), hotB...) {
		res, err := c.Query(q)
		if err != nil || len(res.Rows) != 1 {
			fatalf("shift expectation %q: %v", q, err)
		}
		expect[q] = agg{res.Rows[0][0].Int64(), res.Rows[0][1].Float64()}
	}

	exec1 := func(q string) {
		res, err := c.Query(q)
		e := expect[q]
		if err != nil || len(res.Rows) != 1 ||
			res.Rows[0][0].Int64() != e.count || !sumClose(res.Rows[0][1].Float64(), e.sum) {
			sr.Mismatches++
		}
	}
	// measure runs texts round-robin for d and returns the rate, checking
	// every result.
	measure := func(texts []string, d time.Duration) float64 {
		var ops int64
		t0 := time.Now()
		for time.Since(t0) < d {
			exec1(texts[int(ops)%len(texts)])
			ops++
		}
		return float64(ops) / time.Since(t0).Seconds()
	}
	delta := func(name string) int64 {
		return db.MetricsSnapshot().Counters[name] - snap0.Counters[name]
	}

	// Phase A: first half is the promotion transient, second half the
	// specialized steady state.
	measure(hotA, phase/2)
	sr.PhaseAOpsSec = measure(hotA, phase/2)

	// The shift: phase A's predicates vanish, phase B takes over. The
	// first half after the shift is the dip (B still interpreted), the
	// second the recovered tail (B promoted and compiled).
	sr.DipOpsSec = measure(hotB, phase/2)
	sr.PostShiftOpsSec = measure(hotB, phase/2)

	// Keep B hot until the advisor has demoted the abandoned set — its
	// heat has to decay below threshold for ColdStreak cycles.
	deadline := time.Now().Add(phase + 4*time.Second)
	for delta("advisor.demotions") == 0 && time.Now().Before(deadline) {
		exec1(hotB[0])
	}

	sr.Promotions = delta("advisor.promotions")
	sr.Demotions = delta("advisor.demotions")
	sr.Cycles = delta("advisor.cycles")

	// Statically-specialized ceiling: advisor off, compile on first use,
	// measured warm over the same texts.
	db.SetAdvisorEnabled(false)
	for _, q := range hotB {
		exec1(q)
	}
	sr.StaticOpsSec = measure(hotB, phase/2)
	if sr.StaticOpsSec > 0 {
		sr.RecoveryRatio = sr.PostShiftOpsSec / sr.StaticOpsSec
	}

	fmt.Printf("shift: phaseA=%.0f ops/s dip=%.0f post-shift=%.0f static=%.0f recovery=%.2f\n",
		sr.PhaseAOpsSec, sr.DipOpsSec, sr.PostShiftOpsSec, sr.StaticOpsSec, sr.RecoveryRatio)
	fmt.Printf("shift advisor: promotions=%d demotions=%d cycles=%d mismatches=%d\n",
		sr.Promotions, sr.Demotions, sr.Cycles, sr.Mismatches)
	return sr
}

// setupBenchTables creates and seeds the bench_* tables over the wire,
// using prepared DML for the bulk inserts.
func setupBenchTables(addr, secret string) error {
	c, err := client.DialConfig(client.Config{Addr: addr, Secret: secret})
	if err != nil {
		return err
	}
	defer c.Close()
	for _, tbl := range []string{"bench_history", "bench_customer", "bench_district", "bench_kv"} {
		c.Exec("drop table " + tbl) // best-effort: fresh server has none
	}
	ddl := []string{
		`create table bench_kv (
			k integer not null,
			v varchar(32) not null,
			primary key (k))`,
		`create table bench_district (
			d_w_id integer not null,
			d_id integer not null,
			d_ytd double not null,
			primary key (d_w_id, d_id))`,
		`create table bench_customer (
			c_w_id integer not null,
			c_d_id integer not null,
			c_id integer not null,
			c_balance double not null,
			c_payment_cnt integer not null,
			primary key (c_w_id, c_d_id, c_id))`,
		`create table bench_history (
			h_c_id integer not null,
			h_d_id integer not null,
			h_w_id integer not null,
			h_amount double not null,
			h_data varchar(24) not null)`,
	}
	for _, s := range ddl {
		if _, err := c.Exec(s); err != nil {
			return fmt.Errorf("%q: %w", s, err)
		}
	}
	ins, err := c.Prepare("insert into bench_kv values ($1, $2)")
	if err != nil {
		return err
	}
	for k := 0; k < kvRows; k++ {
		if _, err := ins.Exec(types.NewInt64(int64(k)), types.NewString(kvVal(k))); err != nil {
			return fmt.Errorf("seed bench_kv %d: %w", k, err)
		}
	}
	ins.Close()
	for w := 1; w <= warehouses; w++ {
		for d := 1; d <= districts; d++ {
			if _, err := c.Exec(fmt.Sprintf(
				"insert into bench_district values (%d, %d, 0.0)", w, d)); err != nil {
				return err
			}
		}
	}
	insC, err := c.Prepare("insert into bench_customer values ($1, $2, $3, 1000.0, 0)")
	if err != nil {
		return err
	}
	defer insC.Close()
	for w := 1; w <= warehouses; w++ {
		for d := 1; d <= districts; d++ {
			for cid := 1; cid <= custPerDist; cid++ {
				if _, err := insC.Exec(types.NewInt64(int64(w)), types.NewInt64(int64(d)),
					types.NewInt64(int64(cid))); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func kvVal(k int) string { return fmt.Sprintf("val-%d", k) }

// runTracedProbes fires a few queries under client-minted trace IDs and
// prints one log line per probe; each ID is the handle that joins this
// line with the server-side span tree at /traces?id=<id>.
func runTracedProbes(addr, secret string, seed int64) {
	c, err := client.DialConfig(client.Config{Addr: addr, Secret: secret})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: traced probe dial: %v\n", err)
		return
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(seed ^ 0x7ace))
	probes := []string{
		"select count(*), sum(l_extendedprice) from lineitem where l_quantity < 24",
		"select p_name, p_retailprice from part where p_partkey = 1",
		"select v from bench_kv where k = 7",
	}
	for _, q := range probes {
		id := rng.Uint64() | 1 // nonzero: a zero ID would fall back to sampling
		c.TraceNext(id)
		start := time.Now()
		res, err := c.Query(q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: traced probe: %v\n", err)
			continue
		}
		echo := "echo=missing"
		if res.TraceID == id {
			echo = "echo=ok"
		}
		fmt.Printf("client trace %016x latency=%v rows=%d %s sql=%q\n",
			id, time.Since(start).Round(time.Microsecond), len(res.Rows), echo, q)
	}
}

// worker is one connection's prepared workload.
type worker struct {
	c         *client.Conn
	rng       *rand.Rand
	nParts    int
	txnBees   bool // payment via one ExecuteTxn instead of four statements
	kvGet     *client.Stmt
	partGet   *client.Stmt
	liRange   *client.Stmt
	payDist   *client.Stmt
	payGet    *client.Stmt
	payUpd    *client.Stmt
	payHist   *client.Stmt
	ops       int64
	errs      int64
	misses    int64
	conflicts int64
	lats      []time.Duration
}

func newWorker(addr, secret string, seed int64, nParts int, txnBees bool) (*worker, error) {
	c, err := client.DialConfig(client.Config{Addr: addr, Secret: secret})
	if err != nil {
		return nil, err
	}
	w := &worker{c: c, rng: rand.New(rand.NewSource(seed)), nParts: nParts, txnBees: txnBees}
	prepare := func(sql string) (*client.Stmt, error) { return c.Prepare(sql) }
	if w.kvGet, err = prepare("select v from bench_kv where k = $1"); err != nil {
		return nil, err
	}
	if w.partGet, err = prepare("select p_name, p_retailprice from part where p_partkey = $1"); err != nil {
		return nil, err
	}
	if w.liRange, err = prepare(
		"select count(*), sum(l_extendedprice) from lineitem where l_orderkey >= $1 and l_orderkey < $2"); err != nil {
		return nil, err
	}
	if txnBees {
		// The same Payment shape as the statement path below, fused
		// server-side: $1=w_id, $2=d_id, $3=c_id, $4=amount.
		if err := c.PrepareTxn(`prepare transaction pay as begin;
			update bench_district set d_ytd = d_ytd + $4 where d_w_id = $1 and d_id = $2;
			update bench_customer set c_balance = c_balance - $4, c_payment_cnt = c_payment_cnt + 1
				where c_w_id = $1 and c_d_id = $2 and c_id = $3;
			insert into bench_history values ($3, $2, $1, $4, 'payment');
			select c_balance from bench_customer where c_w_id = $1 and c_d_id = $2 and c_id = $3;
		commit`); err != nil {
			return nil, fmt.Errorf("prepare transaction pay: %w", err)
		}
		return w, nil
	}
	if w.payDist, err = prepare(
		"update bench_district set d_ytd = d_ytd + $1 where d_w_id = $2 and d_id = $3"); err != nil {
		return nil, err
	}
	if w.payGet, err = prepare(
		"select c_balance from bench_customer where c_w_id = $1 and c_d_id = $2 and c_id = $3"); err != nil {
		return nil, err
	}
	if w.payUpd, err = prepare(
		"update bench_customer set c_balance = c_balance - $1, c_payment_cnt = c_payment_cnt + 1 " +
			"where c_w_id = $2 and c_d_id = $3 and c_id = $4"); err != nil {
		return nil, err
	}
	if w.payHist, err = prepare(
		"insert into bench_history values ($1, $2, $3, $4, 'payment')"); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *worker) close() { w.c.Close() }

// step runs one operation of the mixed workload and records its latency.
// A first-updater-wins loss (the typed "write_conflict" error code) is
// counted and retried once — the standard client reaction to MVCC
// conflicts — rather than reported as an error.
func (w *worker) step() {
	start := time.Now()
	op := w.pickOp()
	err := op()
	if isConflictErr(err) {
		w.conflicts++
		err = op()
	}
	w.lats = append(w.lats, time.Since(start))
	w.ops++
	if err != nil {
		w.errs++
	}
}

// pickOp selects one operation of the mixed workload.
func (w *worker) pickOp() func() error {
	switch p := w.rng.Intn(100); {
	case p < 35: // verified point read on the seeded kv table
		k := w.rng.Intn(kvRows)
		return func() error {
			res, err := w.kvGet.Query(types.NewInt64(int64(k)))
			if err == nil && (len(res.Rows) != 1 || res.Rows[0][0].Str() != kvVal(k)) {
				w.misses++
			}
			return err
		}
	case p < 55: // TPC-H point query
		k := 1 + w.rng.Intn(w.nParts)
		return func() error {
			_, err := w.partGet.Query(types.NewInt64(int64(k)))
			return err
		}
	case p < 70: // TPC-H range aggregate
		lo := 1 + w.rng.Intn(1000)
		return func() error {
			_, err := w.liRange.Query(types.NewInt64(int64(lo)), types.NewInt64(int64(lo+64)))
			return err
		}
	default: // TPC-C-Payment-shaped transaction
		return w.payment
	}
}

// isConflictErr reports whether err is the server's typed write-conflict
// error.
func isConflictErr(err error) bool {
	var we *wire.Error
	return errors.As(err, &we) && we.Code == wire.CodeConflict
}

func (w *worker) payment() error {
	wid := int64(1 + w.rng.Intn(warehouses))
	did := int64(1 + w.rng.Intn(districts))
	cid := int64(1 + w.rng.Intn(custPerDist))
	amount := 1.0 + float64(w.rng.Intn(500))/100
	if w.txnBees {
		res, err := w.c.ExecuteTxn("pay", types.NewInt64(wid), types.NewInt64(did),
			types.NewInt64(cid), types.NewFloat64(amount))
		if err != nil {
			return err
		}
		if len(res.Rows) != 1 {
			w.misses++
			return fmt.Errorf("payment: customer (%d,%d,%d) missing", wid, did, cid)
		}
		return nil
	}
	if _, err := w.payDist.Exec(types.NewFloat64(amount),
		types.NewInt64(wid), types.NewInt64(did)); err != nil {
		return err
	}
	res, err := w.payGet.Query(types.NewInt64(wid), types.NewInt64(did), types.NewInt64(cid))
	if err != nil {
		return err
	}
	if len(res.Rows) != 1 {
		w.misses++
		return fmt.Errorf("payment: customer (%d,%d,%d) missing", wid, did, cid)
	}
	if _, err := w.payUpd.Exec(types.NewFloat64(amount),
		types.NewInt64(wid), types.NewInt64(did), types.NewInt64(cid)); err != nil {
		return err
	}
	_, err = w.payHist.Exec(types.NewInt64(cid), types.NewInt64(did), types.NewInt64(wid),
		types.NewFloat64(amount))
	return err
}

// runMixed drives n connections for dur and aggregates their counters.
func runMixed(addr, secret string, n int, dur time.Duration, seed int64, nParts int, txnBees bool) Round {
	workers := make([]*worker, n)
	for i := range workers {
		w, err := newWorker(addr, secret, seed+int64(i), nParts, txnBees)
		if err != nil {
			fatalf("worker %d: %v", i, err)
		}
		workers[i] = w
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	start := time.Now()
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for !stop.Load() {
				w.step()
			}
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	r := Round{Name: "mixed", Conns: n, Seconds: elapsed.Seconds()}
	var all []time.Duration
	for _, w := range workers {
		r.Ops += w.ops
		r.Errors += w.errs
		r.Conflicts += w.conflicts
		r.Mismatches += w.misses
		all = append(all, w.lats...)
		w.close()
	}
	r.OpsPerSec = float64(r.Ops) / elapsed.Seconds()
	r.P50us, r.P95us, r.P99us = percentiles(all)
	return r
}

// runPreparedVsAdhoc measures point-query throughput twice at the same
// connection count: once through prepared statements, once as ad-hoc SQL
// text the server must parse and plan on every request.
func runPreparedVsAdhoc(addr, secret string, n int, dur time.Duration, seed int64, nParts int) *PreparedVsAdhoc {
	run := func(prepared bool) float64 {
		var wg sync.WaitGroup
		var stop atomic.Bool
		var total atomic.Int64
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, err := client.DialConfig(client.Config{Addr: addr, Secret: secret})
				if err != nil {
					fatalf("dial: %v", err)
				}
				defer c.Close()
				rng := rand.New(rand.NewSource(seed + int64(i)))
				var st *client.Stmt
				if prepared {
					if st, err = c.Prepare("select p_name, p_retailprice from part where p_partkey = $1"); err != nil {
						fatalf("prepare: %v", err)
					}
				}
				var ops int64
				for !stop.Load() {
					k := 1 + rng.Intn(nParts)
					if prepared {
						_, err = st.Query(types.NewInt64(int64(k)))
					} else {
						_, err = c.Query(fmt.Sprintf(
							"select p_name, p_retailprice from part where p_partkey = %d", k))
					}
					if err == nil {
						ops++
					}
				}
				total.Add(ops)
			}(i)
		}
		start := time.Now()
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
		return float64(total.Load()) / time.Since(start).Seconds()
	}
	adhoc := run(false)
	prep := run(true)
	return &PreparedVsAdhoc{Conns: n, AdhocOpsSec: adhoc, PrepareOpsSec: prep,
		Speedup: prep / adhoc}
}

func percentiles(lats []time.Duration) (p50, p95, p99 float64) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Microsecond)
	}
	return at(0.50), at(0.95), at(0.99)
}

func parseConns(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -conns element %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-conns is empty")
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}
