// Command chaos-bench runs the fault-injection experiment (E11): the full
// TPC-H query set plus a TPC-C transaction stream on a bee-enabled
// database whose page store injects transient read errors, bit flips,
// torn writes, and latency spikes from a seeded schedule. Every query
// round must either match the fault-free baseline or fail with a typed
// error; the command exits nonzero if any round mismatched, returned an
// untyped error, or let a panic escape.
//
// With -kill-recover it instead runs the kill-and-recover experiment
// (E16): a WAL-enabled database is killed at rotating kill points — clean,
// mid-commit, mid-checkpoint, torn log tail — and each recovery must
// replay to the acknowledged, baseline-equal state (TPC-H answers,
// acknowledged DML, TPC-C consistency invariants). The schedule is fully
// seeded, so a failing run replays bit-for-bit from its seed.
//
// Usage:
//
//	chaos-bench [-seed 42] [-sf 0.01] [-pool 256] [-rounds 2] [-q 1,6,14]
//	            [-workers 0] [-read-err 0.02] [-bit-flip 0.01] [-torn 0.002]
//	            [-spike 0.01] [-bee-panics] [-timeout 0] [-tpcc-txns 2000]
//	            [-dml 4]
//	chaos-bench -kill-recover [-seed 42] [-sf 0.01] [-pool 256] [-rounds 4]
//	            [-q 1,6,14] [-acked 50] [-warehouses 1] [-tpcc-txns 300]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"microspec/internal/harness"
)

func main() {
	o := harness.DefaultChaosOptions()
	seed := flag.Int64("seed", o.Seed, "fault-schedule seed (same seed replays the same run)")
	sf := flag.Float64("sf", o.SF, "TPC-H scale factor")
	pool := flag.Int("pool", o.PoolPages, "buffer-pool pages (small pool keeps reads flowing through the faulty device)")
	rounds := flag.Int("rounds", o.Rounds, "fault-injected executions per query")
	qlist := flag.String("q", "", "comma-separated query subset, e.g. 1,6,14")
	workers := flag.Int("workers", 0, "intra-query parallelism degree (0 = GOMAXPROCS, 1 = serial)")
	readErr := flag.Float64("read-err", o.Faults.ReadErr, "probability of a transient read error")
	bitFlip := flag.Float64("bit-flip", o.Faults.BitFlip, "probability of a bit flip in a read page copy")
	torn := flag.Float64("torn", o.Faults.TornWrite, "probability of a torn (half-persisted) write")
	spike := flag.Float64("spike", o.Faults.LatencySpike, "probability of a latency spike on an I/O")
	beePanics := flag.Bool("bee-panics", o.BeePanics, "also inject bee panics (quarantine fallback) on every third round")
	timeout := flag.Duration("timeout", 0, "statement timeout during fault rounds (0 = none), e.g. 500ms")
	tpccTxns := flag.Int("tpcc-txns", o.TPCCTxns, "TPC-C transactions to run under faults (0 = skip)")
	dml := flag.Int("dml", o.DMLWriters, "background DML writers churning a side table during the query rounds; queries must still match their serial baselines (0 = off)")
	killRecover := flag.Bool("kill-recover", false, "run the kill-and-recover experiment (E16) instead of fault injection")
	acked := flag.Int("acked", 0, "kill-recover: acknowledged inserts before each kill (0 = default)")
	warehouses := flag.Int("warehouses", 0, "kill-recover: TPC-C warehouses (0 = default)")
	flag.Parse()

	o.Seed = *seed
	o.SF = *sf
	o.PoolPages = *pool
	o.Rounds = *rounds
	o.Workers = *workers
	o.Faults.ReadErr = *readErr
	o.Faults.BitFlip = *bitFlip
	o.Faults.TornWrite = *torn
	o.Faults.LatencySpike = *spike
	o.BeePanics = *beePanics
	o.Timeout = *timeout
	o.TPCCTxns = *tpccTxns
	o.DMLWriters = *dml
	if *qlist != "" {
		for _, part := range strings.Split(*qlist, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 || n > 22 {
				fatalf("bad query number %q", part)
			}
			o.Queries = append(o.Queries, n)
		}
	}

	if *killRecover {
		runKillRecover(o, *acked, *warehouses)
		return
	}

	fmt.Printf("loading TPC-H at SF %g, then injecting faults with seed %d...\n", o.SF, o.Seed)
	report, err := harness.RunChaos(o)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Print(report.Format())
	if report.BeeBenefits != "" {
		fmt.Printf("\n%s", report.BeeBenefits)
	}
	if report.Bad() > 0 {
		os.Exit(1)
	}
}

// runKillRecover maps the shared flags onto the kill-and-recover options
// and runs E16; exits nonzero if any recovery broke a durability
// invariant.
func runKillRecover(o harness.ChaosOptions, acked, warehouses int) {
	ko := harness.DefaultKillRecoverOptions()
	ko.Seed = o.Seed
	ko.SF = o.SF
	ko.PoolPages = o.PoolPages
	ko.Workers = o.Workers
	ko.Queries = o.Queries
	if o.Rounds > 0 {
		ko.Rounds = o.Rounds
	}
	if acked > 0 {
		ko.AckedPerRound = acked
	}
	if warehouses > 0 {
		ko.TPCCWarehouses = warehouses
	}
	ko.TPCCTxns = o.TPCCTxns
	fmt.Printf("loading TPC-H at SF %g, then kill-and-recover with seed %d...\n", ko.SF, ko.Seed)
	report, err := harness.RunKillRecover(ko)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Print(report.Format())
	if report.Bad() > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaos-bench: "+format+"\n", args...)
	os.Exit(1)
}
