// Command bulkload-bench regenerates the paper's Figure 8: per-relation
// bulk-load time of a bee-enabled database (SCL routine plus tuple-bee
// creation, with the resulting storage reduction paying off in page-write
// I/O) against the stock database (generic heap_fill_tuple). It also
// prints the §VI-B instruction drill-down (heap_fill_tuple vs SCL).
//
// Usage:
//
//	bulkload-bench [-sf 0.01] [-smallrows 50000] [-runs 3]
package main

import (
	"flag"
	"fmt"
	"os"

	"microspec/internal/harness"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	smallRows := flag.Int("smallrows", 50000, "rows loaded into region and nation (the paper uses 1M)")
	runs := flag.Int("runs", 3, "timed loads per relation (minimum reported)")
	flag.Parse()

	o := harness.DefaultBulkLoadOptions()
	o.SF = *sf
	o.SmallRelationRows = *smallRows
	o.Runs = *runs
	results, err := harness.RunBulkLoad(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bulkload-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(harness.FormatBulkLoad(results))
	fmt.Println()
	fmt.Println("§VI-B drill-down (orders): total instructions stock vs bee")
	for _, r := range results {
		if r.Relation == "orders" {
			fmt.Printf("  total: %d vs %d (fill share: %d vs %d)\n",
				r.StockTotalInstr, r.BeeTotalInstr, r.StockFillInstr, r.BeeFillInstr)
		}
	}
}
