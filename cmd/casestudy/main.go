// Command casestudy reproduces the paper's §II case study: the query
// `select o_comment from orders` on a stock versus a bee-enabled
// database, reporting the per-tuple deform instruction counts (paper:
// ≈340 generic vs ≈146 specialized), the whole-query instruction totals
// (paper: -8.5%), and the run times (paper: -7.4%).
//
// Usage:
//
//	casestudy [-sf 0.01] [-runs 7]
package main

import (
	"flag"
	"fmt"
	"os"

	"microspec/internal/harness"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	runs := flag.Int("runs", 7, "timed runs (highest/lowest dropped)")
	flag.Parse()

	o := harness.DefaultOptions()
	o.SF = *sf
	o.Runs = *runs
	res, err := harness.RunCaseStudy(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "casestudy: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())
}
